/// \file test_metis_buffered.cpp
/// \brief Parity and error-channel tests for the buffered METIS reader:
///        node-by-node equality with the in-memory CsrGraph across buffer
///        sizes (including degenerate ones that force refill seams), comment
///        lines, isolated trailing nodes, rewind(), and the IoError channel
///        for malformed content.
#include "oms/stream/metis_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/graph/io.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_text(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good());
}

/// Stream \p path and assert node-by-node equality with \p g.
void expect_stream_matches_graph(const std::string& path, const CsrGraph& g,
                                 std::size_t buffer_bytes) {
  MetisNodeStream stream(path, buffer_bytes);
  EXPECT_EQ(stream.header().num_nodes, g.num_nodes());
  EXPECT_EQ(stream.header().num_edges, g.num_edges());

  StreamedNode node{};
  NodeId count = 0;
  while (stream.next(node)) {
    ASSERT_LT(count, g.num_nodes());
    EXPECT_EQ(node.id, count);
    EXPECT_EQ(node.weight, g.node_weight(count)) << "node " << count;
    const auto expected_neighbors = g.neighbors(count);
    const auto expected_weights = g.incident_weights(count);
    ASSERT_EQ(node.neighbors.size(), expected_neighbors.size()) << "node " << count;
    for (std::size_t i = 0; i < expected_neighbors.size(); ++i) {
      EXPECT_EQ(node.neighbors[i], expected_neighbors[i]);
      EXPECT_EQ(node.edge_weights[i], expected_weights[i]);
    }
    ++count;
  }
  EXPECT_EQ(count, g.num_nodes());
}

CsrGraph weighted_fixture() {
  Rng rng(4242);
  GraphBuilder builder(300);
  for (NodeId u = 0; u < 300; ++u) {
    builder.set_node_weight(u, 1 + static_cast<NodeWeight>(rng.next_below(7)));
  }
  for (NodeId u = 0; u < 300; ++u) {
    for (int d = 0; d < 3; ++d) {
      const auto v = static_cast<NodeId>(rng.next_below(300));
      if (v != u) {
        builder.add_edge(u, v, 1 + static_cast<EdgeWeight>(rng.next_below(11)));
      }
    }
  }
  return std::move(builder).build();
}

TEST(MetisBuffered, MatchesInMemoryGraphAcrossBufferSizes) {
  const CsrGraph g = weighted_fixture();
  const std::string path = temp_path("oms_buffered_parity.graph");
  write_metis(g, path);
  // 64 is the reader's floor; odd small sizes force token- and line-spanning
  // refills; the default exercises the single-read fast path.
  for (const std::size_t buffer : {std::size_t{1}, std::size_t{64},
                                   std::size_t{67}, std::size_t{4096},
                                   MetisNodeStream::kDefaultBufferBytes}) {
    SCOPED_TRACE("buffer=" + std::to_string(buffer));
    expect_stream_matches_graph(path, g, buffer);
  }
  std::remove(path.c_str());
}

TEST(MetisBuffered, UnweightedGeneratedGraphRoundTrips) {
  const CsrGraph g = gen::barabasi_albert(500, 4, 9);
  const std::string path = temp_path("oms_buffered_ba.graph");
  write_metis(g, path);
  expect_stream_matches_graph(path, g, 128);
  std::remove(path.c_str());
}

TEST(MetisBuffered, CommentLinesAndIsolatedTrailingNodes) {
  // 5 nodes, 2 edges; node 2 is an empty line, nodes 3 and 4 are missing
  // trailing lines; comments interleave everywhere.
  const std::string path = temp_path("oms_buffered_comments.graph");
  write_text(path,
             "% leading comment\n"
             "%% another\n"
             "5 2\n"
             "% mid comment\n"
             "2\n"
             "1 3\n"
             "\n"
             "% comment before a missing line\n"
             "2\n");
  for (const std::size_t buffer : {std::size_t{1}, std::size_t{256}}) {
    SCOPED_TRACE("buffer=" + std::to_string(buffer));
    MetisNodeStream stream(path, buffer);
    EXPECT_EQ(stream.header().num_nodes, 5u);
    EXPECT_EQ(stream.header().num_edges, 2u);
    StreamedNode node{};
    std::vector<std::vector<NodeId>> adjacency;
    while (stream.next(node)) {
      adjacency.emplace_back(node.neighbors.begin(), node.neighbors.end());
      EXPECT_EQ(node.weight, 1);
    }
    const std::vector<std::vector<NodeId>> expected = {
        {1}, {0, 2}, {}, {1}, {}};
    EXPECT_EQ(adjacency, expected);
  }
  std::remove(path.c_str());
}

TEST(MetisBuffered, FileWithoutTrailingNewline) {
  const std::string path = temp_path("oms_buffered_notrail.graph");
  write_text(path, "2 1\n2\n1"); // last line unterminated
  MetisNodeStream stream(path, 64);
  StreamedNode node{};
  ASSERT_TRUE(stream.next(node));
  ASSERT_EQ(node.neighbors.size(), 1u);
  EXPECT_EQ(node.neighbors[0], 1u);
  ASSERT_TRUE(stream.next(node));
  ASSERT_EQ(node.neighbors.size(), 1u);
  EXPECT_EQ(node.neighbors[0], 0u);
  EXPECT_FALSE(stream.next(node));
  std::remove(path.c_str());
}

TEST(MetisBuffered, RewindReplaysIdentically) {
  const CsrGraph g = weighted_fixture();
  const std::string path = temp_path("oms_buffered_rewind.graph");
  write_metis(g, path);

  MetisNodeStream stream(path, 97);
  StreamedNode node{};
  std::vector<std::vector<NodeId>> first;
  std::vector<NodeWeight> first_weights;
  while (stream.next(node)) {
    first.emplace_back(node.neighbors.begin(), node.neighbors.end());
    first_weights.push_back(node.weight);
  }
  stream.rewind();
  std::vector<std::vector<NodeId>> second;
  std::vector<NodeWeight> second_weights;
  while (stream.next(node)) {
    second.emplace_back(node.neighbors.begin(), node.neighbors.end());
    second_weights.push_back(node.weight);
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_weights, second_weights);
  std::remove(path.c_str());
}

TEST(MetisBuffered, LineLongerThanBufferGrowsTransparently) {
  // A star center whose adjacency line far exceeds the 64-byte floor.
  const CsrGraph g = testing::star_graph(400);
  const std::string path = temp_path("oms_buffered_star.graph");
  write_metis(g, path);
  expect_stream_matches_graph(path, g, 64);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// IoError channel: malformed *content* must raise, not abort.
// ---------------------------------------------------------------------------

TEST(MetisBufferedErrors, MissingFile) {
  EXPECT_THROW(MetisNodeStream("/nonexistent/definitely_not_here.graph"), IoError);
}

TEST(MetisBufferedErrors, EmptyFileHasNoHeader) {
  const std::string path = temp_path("oms_buffered_empty.graph");
  write_text(path, "");
  EXPECT_THROW(MetisNodeStream stream(path), IoError);
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, MalformedHeader) {
  const std::string path = temp_path("oms_buffered_badheader.graph");
  // Includes an n beyond NodeId's range, which must raise rather than
  // silently truncate through the 32-bit cast.
  for (const char* header :
       {"abc def\n", "5\n", "5 x\n", "5 2 z\n", "4294967298 1\n"}) {
    write_text(path, header);
    EXPECT_THROW(MetisNodeStream stream(path), IoError) << header;
  }
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, MultiConstraintHeaderRejected) {
  const std::string path = temp_path("oms_buffered_multicon.graph");
  write_text(path, "4 2 110\n"); // fmt with a hundreds digit
  EXPECT_THROW(MetisNodeStream stream(path), IoError);
  write_text(path, "4 2 11 3\n"); // ncon = 3
  EXPECT_THROW(MetisNodeStream stream(path), IoError);
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, NeighborOutOfRange) {
  const std::string path = temp_path("oms_buffered_range.graph");
  write_text(path, "2 1\n2\n3\n"); // node 2 references neighbor 3 > n
  MetisNodeStream stream(path);
  StreamedNode node{};
  ASSERT_TRUE(stream.next(node));
  EXPECT_THROW(stream.next(node), IoError);
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, ZeroNeighborIdRejected) {
  const std::string path = temp_path("oms_buffered_zero.graph");
  write_text(path, "2 1\n0\n1\n"); // METIS ids are 1-based
  MetisNodeStream stream(path);
  StreamedNode node{};
  EXPECT_THROW(stream.next(node), IoError);
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, MissingEdgeWeight) {
  const std::string path = temp_path("oms_buffered_noweight.graph");
  write_text(path, "2 1 1\n2 7\n1\n"); // fmt=1 but node 2's weight is absent
  MetisNodeStream stream(path);
  StreamedNode node{};
  ASSERT_TRUE(stream.next(node));
  EXPECT_THROW(stream.next(node), IoError);
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, NonNumericToken) {
  const std::string path = temp_path("oms_buffered_garbage.graph");
  write_text(path, "2 1\n2\nfoo\n");
  MetisNodeStream stream(path);
  StreamedNode node{};
  ASSERT_TRUE(stream.next(node));
  EXPECT_THROW(stream.next(node), IoError);
  std::remove(path.c_str());
}

TEST(MetisBufferedErrors, MessageCarriesFileAndLine) {
  const std::string path = temp_path("oms_buffered_lineno.graph");
  write_text(path, "% comment\n2 1\n2\nbad\n");
  MetisNodeStream stream(path);
  StreamedNode node{};
  ASSERT_TRUE(stream.next(node));
  try {
    (void)stream.next(node);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":4:"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

} // namespace
} // namespace oms
