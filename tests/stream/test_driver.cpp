#include "oms/stream/one_pass_driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/stream/block_weights.hpp"
#include "oms/stream/metis_stream.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

/// Records the order in which nodes arrive; assigns round-robin.
/// Recording is mutex-guarded so the parallel driver can exercise it too.
class RecordingAssigner final : public OnePassAssigner {
public:
  explicit RecordingAssigner(NodeId n, BlockId k)
      : k_(k), assignment_(n, kInvalidBlock) {}

  void prepare(int) override {}
  BlockId assign(const StreamedNode& node, int, WorkCounters& counters) override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      order.push_back(node.id);
      degrees.push_back(node.neighbors.size());
      weights.push_back(node.weight);
    }
    counters.layers_traversed += 1;
    const BlockId b = static_cast<BlockId>(node.id % static_cast<NodeId>(k_));
    assignment_[node.id] = b;
    return b;
  }
  [[nodiscard]] BlockId block_of(NodeId u) const override { return assignment_[u]; }
  [[nodiscard]] BlockId num_blocks() const override { return k_; }
  [[nodiscard]] std::vector<BlockId> take_assignment() override {
    return std::move(assignment_);
  }

  std::vector<NodeId> order;
  std::vector<std::size_t> degrees;
  std::vector<NodeWeight> weights;

private:
  BlockId k_;
  std::vector<BlockId> assignment_;
  std::mutex mutex_;
};

TEST(OnePassDriver, SequentialVisitsNodesInIdOrder) {
  const CsrGraph g = testing::path_graph(20);
  RecordingAssigner assigner(20, 4);
  const StreamResult result = run_one_pass(g, assigner, 1);
  ASSERT_EQ(assigner.order.size(), 20u);
  for (NodeId i = 0; i < 20; ++i) {
    EXPECT_EQ(assigner.order[i], i);
  }
  EXPECT_EQ(result.assignment.size(), 20u);
  EXPECT_EQ(result.work.layers_traversed, 20u);
}

TEST(OnePassDriver, DeliversFullNeighborhoods) {
  const CsrGraph g = testing::star_graph(8);
  RecordingAssigner assigner(8, 2);
  (void)run_one_pass(g, assigner, 1);
  EXPECT_EQ(assigner.degrees[0], 7u); // center sees all leaves
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(assigner.degrees[i], 1u);
  }
}

TEST(OnePassDriver, ParallelVisitsEveryNodeExactlyOnce) {
  const CsrGraph g = gen::grid_2d(40, 40);
  for (const int threads : {2, 4, 8}) {
    RecordingAssigner assigner(g.num_nodes(), 4);
    const StreamResult result = run_one_pass(g, assigner, threads);
    // Order across threads is interleaved, but coverage must be exact.
    // (RecordingAssigner::order is racy under threads; use the returned
    // assignment as the source of truth.)
    std::set<BlockId> blocks;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_NE(result.assignment[u], kInvalidBlock);
      blocks.insert(result.assignment[u]);
    }
    EXPECT_EQ(blocks.size(), 4u);
    EXPECT_EQ(result.work.layers_traversed, g.num_nodes());
  }
}

TEST(OnePassDriver, ThreadCountZeroMeansAllHardwareThreads) {
  const CsrGraph g = testing::path_graph(100);
  RecordingAssigner assigner(100, 2);
  const StreamResult result = run_one_pass(g, assigner, 0);
  EXPECT_EQ(result.work.layers_traversed, 100u);
}

TEST(BlockWeights, AtomicAddAndTotal) {
  BlockWeights w(4);
  w.add(0, 5);
  w.add(3, 2);
  w.add(0, 1);
  EXPECT_EQ(w.load(0), 6);
  EXPECT_EQ(w.load(1), 0);
  EXPECT_EQ(w.load(3), 2);
  EXPECT_EQ(w.total(), 8);
  w.reset();
  EXPECT_EQ(w.total(), 0);
}

// The concurrent BlockWeights stress tests spawn std::threads rather than an
// OMP region so the TSan CI leg sees the synchronization (an uninstrumented
// OpenMP runtime's fork/join is invisible to it).
TEST(BlockWeights, ConcurrentIncrementsAreLossless) {
  BlockWeights w(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&w] {
      for (int i = 0; i < 12500; ++i) {
        w.add(static_cast<std::size_t>(i % 2), 1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(w.load(0), 50000);
  EXPECT_EQ(w.load(1), 50000);
}

TEST(BlockWeights, SetLayoutPreservesValues) {
  BlockWeights w(5);
  for (std::size_t i = 0; i < 5; ++i) {
    w.add(i, static_cast<NodeWeight>(10 * i + 1));
  }
  const std::uint64_t dense_bytes = w.footprint_bytes();
  w.set_layout(BlockWeights::Layout::kPadded);
  EXPECT_EQ(w.footprint_bytes(), dense_bytes * 8); // one cache line per slot
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(w.load(i), static_cast<NodeWeight>(10 * i + 1));
  }
  EXPECT_EQ(w.total(), 1 + 11 + 21 + 31 + 41);
  w.set_layout(BlockWeights::Layout::kDense);
  EXPECT_EQ(w.footprint_bytes(), dense_bytes);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(w.load(i), static_cast<NodeWeight>(10 * i + 1));
  }
}

TEST(BlockWeights, ViewsMatchGenericAccessors) {
  BlockWeights w(4, BlockWeights::Layout::kPadded);
  const auto padded = w.view<BlockWeights::Layout::kPadded>();
  padded.add(2, 7);
  padded.add(3, 9);
  EXPECT_EQ(w.load(2), 7);
  EXPECT_EQ(padded.load(3), 9);
  w.set_layout(BlockWeights::Layout::kDense);
  const auto dense = w.view<BlockWeights::Layout::kDense>();
  EXPECT_EQ(dense.load(2), 7);
  dense.add(2, -7);
  EXPECT_EQ(w.load(2), 0);
}

TEST(BlockWeights, ConcurrentIncrementsAreLosslessWhenPadded) {
  BlockWeights w(3, BlockWeights::Layout::kPadded);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&w] {
      for (int i = 0; i < 11250; ++i) {
        w.add(static_cast<std::size_t>(i % 3), 1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(w.load(0), 30000);
  EXPECT_EQ(w.load(1), 30000);
  EXPECT_EQ(w.load(2), 30000);
}

TEST(MetisStream, HeaderAndNodeCount) {
  const CsrGraph g = gen::grid_2d(10, 10);
  const std::string path = ::testing::TempDir() + "/oms_stream_test.graph";
  write_metis(g, path);

  MetisNodeStream stream(path);
  EXPECT_EQ(stream.header().num_nodes, 100u);
  EXPECT_EQ(stream.header().num_edges, g.num_edges());

  StreamedNode node{};
  NodeId count = 0;
  EdgeIndex arcs = 0;
  while (stream.next(node)) {
    EXPECT_EQ(node.id, count);
    arcs += node.neighbors.size();
    ++count;
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(arcs, g.num_arcs());
  std::remove(path.c_str());
}

TEST(MetisStream, RewindReplaysTheStream) {
  const CsrGraph g = testing::cycle_graph(12);
  const std::string path = ::testing::TempDir() + "/oms_stream_rewind.graph";
  write_metis(g, path);

  MetisNodeStream stream(path);
  StreamedNode node{};
  int first_count = 0;
  while (stream.next(node)) {
    ++first_count;
  }
  stream.rewind();
  int second_count = 0;
  while (stream.next(node)) {
    ++second_count;
  }
  EXPECT_EQ(first_count, 12);
  EXPECT_EQ(second_count, 12);
  std::remove(path.c_str());
}

TEST(MetisStream, FileDriverMatchesInMemoryDriver) {
  const CsrGraph g = gen::barabasi_albert(300, 3, 6);
  const std::string path = ::testing::TempDir() + "/oms_stream_match.graph";
  write_metis(g, path);

  RecordingAssigner mem_assigner(g.num_nodes(), 5);
  const StreamResult mem = run_one_pass(g, mem_assigner, 1);
  RecordingAssigner file_assigner(g.num_nodes(), 5);
  const StreamResult file = run_one_pass_from_file(path, file_assigner);

  EXPECT_EQ(mem.assignment, file.assignment);
  EXPECT_EQ(mem_assigner.degrees, file_assigner.degrees);
  std::remove(path.c_str());
}

TEST(MetisStream, StreamsNodeWeights) {
  GraphBuilder builder(3);
  builder.set_node_weight(1, 7);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  const CsrGraph g = std::move(builder).build();
  const std::string path = ::testing::TempDir() + "/oms_stream_weights.graph";
  write_metis(g, path);

  MetisNodeStream stream(path);
  EXPECT_TRUE(stream.header().has_node_weights);
  StreamedNode node{};
  std::vector<NodeWeight> weights;
  while (stream.next(node)) {
    weights.push_back(node.weight);
  }
  EXPECT_EQ(weights, (std::vector<NodeWeight>{1, 7, 1}));
  std::remove(path.c_str());
}

} // namespace
} // namespace oms
