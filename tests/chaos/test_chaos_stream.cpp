/// \file test_chaos_stream.cpp
/// \brief Chaos sweep over every streaming driver: under any seeded fault
///        schedule a run must either raise a clean oms::IoError or produce a
///        result bit-identical to the fault-free golden run — never hang,
///        crash, or return silently different assignments.
///
/// The sweep arms FaultPlan::seeded(s) for a range of seeds; the targeted
/// cases below pin each injection site's exact contract (transient reads
/// heal, hard read errors surface, corruption aborts or skips, a dead
/// producer thread degrades to the sequential path bit-identically).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/stream/buffered_stream_driver.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/pipeline.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

constexpr BlockId kK = 4;
constexpr std::uint64_t kSeed = 1;

/// Shared on-disk inputs plus the fault-free header facts, created once.
/// Every test disarms on entry and exit, so a failing case cannot poison its
/// neighbors through the process-global plan.
class ChaosStreamTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const CsrGraph graph = gen::barabasi_albert(1200, 3, 7);
    metis_path_ = new std::string(::testing::TempDir() + "/oms_chaos.graph");
    edge_path_ = new std::string(::testing::TempDir() + "/oms_chaos.edgelist");
    write_metis(graph, *metis_path_);
    write_edge_list(graph, *edge_path_);
    num_nodes_ = graph.num_nodes();
    num_edges_ = graph.num_edges();
  }

  static void TearDownTestSuite() {
    std::remove(metis_path_->c_str());
    std::remove(edge_path_->c_str());
    delete metis_path_;
    delete edge_path_;
  }

  void SetUp() override { FaultPlan::disarm(); }
  void TearDown() override { FaultPlan::disarm(); }

  // --- drivers under test (fresh state per call; safe to rerun armed) ------

  static std::vector<BlockId> one_pass_sequential() {
    FennelPartitioner fennel(num_nodes_, num_edges_,
                             static_cast<NodeWeight>(num_nodes_), config());
    return run_one_pass_from_file(*metis_path_, fennel).assignment;
  }

  static std::vector<BlockId> one_pass_pipelined() {
    FennelPartitioner fennel(num_nodes_, num_edges_,
                             static_cast<NodeWeight>(num_nodes_), config());
    PipelineConfig pipeline;
    pipeline.watchdog_ms = 20000; // backstop: a hang must fail, not wedge CI
    return run_one_pass_from_file(*metis_path_, fennel, pipeline).assignment;
  }

  static std::vector<BlockId> window_sequential() {
    WindowConfig wc;
    wc.window_size = 64;
    wc.seed = kSeed;
    WindowPartitioner window(num_nodes_, static_cast<NodeWeight>(num_nodes_),
                             wc, kK);
    return run_one_pass_from_file(*metis_path_, window).assignment;
  }

  static std::vector<BlockId> buffered_sequential() {
    return buffered_partition_from_file(*metis_path_, kK, buffered_config())
        .assignment;
  }

  static std::vector<BlockId> buffered_pipelined() {
    PipelineConfig pipeline;
    pipeline.watchdog_ms = 20000;
    return buffered_partition_from_file(*metis_path_, kK, buffered_config(),
                                        pipeline)
        .assignment;
  }

  static std::vector<BlockId> edge_sequential() {
    HdrfPartitioner hdrf(edge_config());
    return run_edge_partition_from_file(*edge_path_, hdrf).edge_assignment;
  }

  static std::vector<BlockId> edge_pipelined() {
    HdrfPartitioner hdrf(edge_config());
    PipelineConfig pipeline;
    pipeline.watchdog_ms = 20000;
    return run_edge_partition_from_file(*edge_path_, hdrf, pipeline)
        .edge_assignment;
  }

  /// The chaos contract, applied to one driver under one armed plan: clean
  /// IoError or golden-identical output. Anything else fails the test.
  template <typename Driver>
  static void expect_clean_or_identical(Driver&& driver,
                                        const std::vector<BlockId>& golden,
                                        const std::string& label) {
    try {
      const std::vector<BlockId> got = driver();
      EXPECT_EQ(got, golden) << label << ": run completed with different output";
    } catch (const IoError&) {
      // A clean failure is an acceptable outcome under injected faults.
    }
  }

  static PartitionConfig config() {
    PartitionConfig pc;
    pc.k = kK;
    pc.seed = kSeed;
    return pc;
  }

  static BufferedConfig buffered_config() {
    BufferedConfig bc;
    bc.buffer_size = 256;
    bc.seed = kSeed;
    return bc;
  }

  static EdgePartConfig edge_config() {
    EdgePartConfig ec;
    ec.k = kK;
    ec.seed = kSeed;
    return ec;
  }

  static std::string* metis_path_;
  static std::string* edge_path_;
  static NodeId num_nodes_;
  static EdgeIndex num_edges_;
};

std::string* ChaosStreamTest::metis_path_ = nullptr;
std::string* ChaosStreamTest::edge_path_ = nullptr;
NodeId ChaosStreamTest::num_nodes_ = 0;
EdgeIndex ChaosStreamTest::num_edges_ = 0;

// --- the seeded sweep -------------------------------------------------------

TEST_F(ChaosStreamTest, SeededFaultSweepOverEveryDriver) {
  struct NamedDriver {
    const char* name;
    std::vector<BlockId> (*run)();
  };
  const NamedDriver drivers[] = {
      {"one-pass sequential", &one_pass_sequential},
      {"one-pass pipelined", &one_pass_pipelined},
      {"window sequential", &window_sequential},
      {"buffered sequential", &buffered_sequential},
      {"buffered pipelined", &buffered_pipelined},
      {"edge sequential", &edge_sequential},
      {"edge pipelined", &edge_pipelined},
  };
  for (const NamedDriver& driver : drivers) {
    const std::vector<BlockId> golden = driver.run(); // disarmed
    for (std::uint64_t draw = 0; draw < 12; ++draw) {
      const std::uint64_t seed = oms::testing::draw_seed(draw);
      FaultPlan plan = FaultPlan::seeded(seed);
      FaultPlan::arm(plan);
      expect_clean_or_identical(driver.run, golden,
                                std::string(driver.name) + " under [" +
                                    plan.describe() + "] (seed " +
                                    std::to_string(seed) + ")");
      FaultPlan::disarm();
    }
  }
}

// --- targeted site contracts ------------------------------------------------

TEST_F(ChaosStreamTest, TransientReadFailureHealsBitIdentically) {
  const std::vector<BlockId> golden = one_pass_sequential();
  FaultPlan::arm(FaultPlan::parse("read.transient@1"));
  EXPECT_EQ(one_pass_sequential(), golden);
}

TEST_F(ChaosStreamTest, ShortReadsMakeProgressBitIdentically) {
  const std::vector<BlockId> golden = one_pass_sequential();
  FaultPlan::arm(FaultPlan::parse("read.short@1+2")); // every other read: 1 byte
  EXPECT_EQ(one_pass_sequential(), golden);
}

TEST_F(ChaosStreamTest, PersistentTransientFailureExhaustsRetries) {
  FaultPlan::arm(FaultPlan::parse("read.transient@1+1")); // every read fails
  try {
    (void)one_pass_sequential();
    FAIL() << "retries never exhausted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("retries exhausted"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ChaosStreamTest, HardReadErrorRaisesIoError) {
  // The small test file lands in the first read chunk, so the hard failure
  // must be scheduled on read #1 to be reachable at all.
  FaultPlan::arm(FaultPlan::parse("read.error@1"));
  EXPECT_THROW((void)one_pass_sequential(), IoError);
}

TEST_F(ChaosStreamTest, CorruptChunkAbortsByDefault) {
  FaultPlan::arm(FaultPlan::parse("read.corrupt@1"));
  EXPECT_THROW((void)one_pass_sequential(), IoError);
}

TEST_F(ChaosStreamTest, CorruptChunkIsSurvivableUnderSkipPolicy) {
  FennelPartitioner fennel(num_nodes_, num_edges_,
                           static_cast<NodeWeight>(num_nodes_), config());
  // Armed before the stream exists: the whole file arrives in refill #1, so
  // the corruption site only fires if the plan is live during construction.
  FaultPlan::arm(FaultPlan::parse("read.corrupt@1"));
  MetisNodeStream stream(*metis_path_);
  StreamErrorPolicy policy;
  policy.action = StreamErrorPolicy::Action::kSkip;
  stream.set_error_policy(policy);
  fennel.prepare(1);
  StreamedNode node{};
  WorkCounters counters;
  while (stream.next(node)) {
    fennel.assign(node, 0, counters);
  }
  EXPECT_EQ(stream.error_stats().lines_skipped, 1u);
  EXPECT_EQ(fennel.take_assignment().size(), num_nodes_);
}

TEST_F(ChaosStreamTest, ConsumerThrowPropagatesFromThePipeline) {
  FaultPlan::arm(FaultPlan::parse("consume.throw@1"));
  EXPECT_THROW((void)one_pass_pipelined(), IoError);
}

TEST_F(ChaosStreamTest, ProducerSpawnFailureDegradesSequentiallyBitIdentically) {
  const std::vector<BlockId> golden = one_pass_pipelined();
  FaultPlan::arm(FaultPlan::parse("thread.spawn@1"));
  EXPECT_EQ(one_pass_pipelined(), golden);
}

TEST_F(ChaosStreamTest, QueueDelayOnlyCostsTimeNeverCorrectness) {
  const std::vector<BlockId> golden = one_pass_pipelined();
  FaultPlan::arm(FaultPlan::parse("queue.delay@1+1,fill.delay@1+1"));
  EXPECT_EQ(one_pass_pipelined(), golden);
}

TEST_F(ChaosStreamTest, BufferedPipelineSurvivesSpawnFailure) {
  const std::vector<BlockId> golden = buffered_pipelined();
  FaultPlan::arm(FaultPlan::parse("thread.spawn@1"));
  EXPECT_EQ(buffered_pipelined(), golden);
}

TEST_F(ChaosStreamTest, EdgePipelineConsumerThrowRaisesCleanly) {
  FaultPlan::arm(FaultPlan::parse("consume.throw@1"));
  EXPECT_THROW((void)edge_pipelined(), IoError);
}

} // namespace
} // namespace oms
