/// \file test_chaos_service.cpp
/// \brief Chaos suite for the hardened service runtime: under any seeded
///        svc.* fault schedule a session must end in a typed reply or a
///        clean close — never garbage, a hang, or a dead daemon — and the
///        self-healing ServiceClient must ride through an injected torn
///        connection with bit-identical answers.
///
/// The targeted cases pin each injection site's exact contract (an accept
/// death costs one connection, a torn read or write costs one session, a
/// slow-loris stall ends in the idle-deadline close); the sweep arms
/// FaultPlan::seeded_service(s) for a range of seeds and checks the global
/// contract plus daemon survival after every schedule.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "oms/oms.hpp"

#include "oms/graph/generators.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/util/fault_injection.hpp"
#include "tests/test_support.hpp"

namespace oms::service {
namespace {

/// Client-side frame write with MSG_NOSIGNAL: a daemon-side close raced by
/// an injected fault must cost a failed send, never SIGPIPE the test.
[[nodiscard]] bool send_frame(int fd, const std::vector<char>& body) {
  const std::vector<char> framed = frame(body);
  const char* cur = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t put = ::send(fd, cur, left, MSG_NOSIGNAL);
    if (put <= 0) {
      return false;
    }
    cur += put;
    left -= static_cast<std::size_t>(put);
  }
  return true;
}

[[nodiscard]] bool read_exactly(int fd, void* out, std::size_t bytes) {
  auto* cur = static_cast<char*>(out);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, cur, bytes);
    if (got <= 0) {
      return false;
    }
    cur += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// One framed reply body; empty on EOF (the clean-close arm of the contract).
[[nodiscard]] std::vector<char> read_reply(int fd) {
  std::uint32_t len = 0;
  if (!read_exactly(fd, &len, sizeof len)) {
    return {};
  }
  std::vector<char> body(len);
  if (len > 0 && !read_exactly(fd, body.data(), len)) {
    return {};
  }
  return body;
}

[[nodiscard]] Status status_of(const std::vector<char>& body) {
  CheckpointReader r(body);
  return static_cast<Status>(r.get_u32());
}

[[nodiscard]] int connect_to(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "could not connect to " << socket_path;
  ::close(fd);
  return -1;
}

/// Disarm first (an injected fault must not tear the shutdown session
/// itself), then send kShutdown until acknowledged.
void shutdown_daemon(const std::string& path) {
  FaultPlan::disarm();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = connect_to(path);
    if (fd < 0) {
      return;
    }
    std::vector<char> reply;
    if (send_frame(fd, encode_shutdown())) {
      reply = read_reply(fd);
    }
    ::close(fd);
    if (!reply.empty() && status_of(reply) == Status::kOk) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ADD_FAILURE() << "could not shut the daemon down at " << path;
}

/// One artifact shared by the whole suite; every test disarms on entry and
/// exit so a failing case cannot poison its neighbors through the
/// process-global plan or drain latch.
class ChaosServiceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    PartitionRequest req;
    req.algo = "oms";
    req.k = 8;
    service_ = new PartitionService(
        Partitioner().partition(gen::barabasi_albert(1500, 4, 13), req));
  }

  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
  }

  void SetUp() override {
    FaultPlan::disarm();
    reset_drain();
  }
  void TearDown() override {
    FaultPlan::disarm();
    reset_drain();
  }

  /// A fresh raw session must get the golden answer — daemon survival.
  static void expect_daemon_answers(const std::string& path,
                                    const std::string& label) {
    const int fd = connect_to(path);
    ASSERT_GE(fd, 0) << label;
    ASSERT_TRUE(send_frame(fd, encode_where(5))) << label;
    const std::vector<char> reply = read_reply(fd);
    ASSERT_FALSE(reply.empty()) << label;
    ASSERT_EQ(status_of(reply), Status::kOk) << label;
    CheckpointReader r(reply);
    (void)r.get_u32();
    EXPECT_EQ(r.get_u32(),
              static_cast<std::uint32_t>(service_->artifact().where(5)))
        << label;
    ::close(fd);
  }

  static PartitionService* service_;
};

PartitionService* ChaosServiceTest::service_ = nullptr;

// --- targeted site contracts ------------------------------------------------

TEST_F(ChaosServiceTest, AcceptDeathCostsOneConnectionNotTheDaemon) {
  const std::string path = ::testing::TempDir() + "/oms_chaos_accept.sock";
  FaultPlan::arm(FaultPlan::parse("svc.accept@1"));
  std::thread server([&] { serve_unix_socket(*service_, path); });

  const int doomed = connect_to(path);
  ASSERT_GE(doomed, 0);
  EXPECT_TRUE(read_reply(doomed).empty())
      << "the injected accept death must close silently, not reply";
  ::close(doomed);

  expect_daemon_answers(path, "after svc.accept@1");
  shutdown_daemon(path);
  server.join();
}

TEST_F(ChaosServiceTest, TornReadCostsOneSessionNotTheDaemon) {
  const std::string path = ::testing::TempDir() + "/oms_chaos_read.sock";
  FaultPlan::arm(FaultPlan::parse("svc.read@1"));
  std::thread server([&] { serve_unix_socket(*service_, path); });

  const int doomed = connect_to(path);
  ASSERT_GE(doomed, 0);
  ASSERT_TRUE(send_frame(doomed, encode_where(1)));
  EXPECT_TRUE(read_reply(doomed).empty())
      << "the torn read must end the session without a reply";
  ::close(doomed);

  expect_daemon_answers(path, "after svc.read@1");
  shutdown_daemon(path);
  server.join();
}

TEST_F(ChaosServiceTest, TornWriteCostsOneSessionNotTheDaemon) {
  const std::string path = ::testing::TempDir() + "/oms_chaos_write.sock";
  FaultPlan::arm(FaultPlan::parse("svc.write@1"));
  std::thread server([&] { serve_unix_socket(*service_, path); });

  const int doomed = connect_to(path);
  ASSERT_GE(doomed, 0);
  ASSERT_TRUE(send_frame(doomed, encode_where(1)));
  EXPECT_TRUE(read_reply(doomed).empty())
      << "the dropped reply must end the session cleanly";
  ::close(doomed);

  expect_daemon_answers(path, "after svc.write@1");
  shutdown_daemon(path);
  server.join();
}

TEST_F(ChaosServiceTest, SlowLorisStallEndsInTheIdleDeadlineClose) {
  FaultPlan::arm(FaultPlan::parse("svc.slow@1"));
  SessionOptions options;
  options.idle_timeout_ms = 50;
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  const auto start = std::chrono::steady_clock::now();
  // The injected stall must end in the same clean timeout close a real
  // stalled peer gets — a bounded wait, not a parked worker.
  EXPECT_FALSE(serve_stream(*service_, in_pipe[0], out_pipe[1], options));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), options.idle_timeout_ms - 10);
  ::close(in_pipe[0]);
  ::close(in_pipe[1]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);
}

TEST_F(ChaosServiceTest, SlowLorisStallWithoutDeadlineIsOnlyJitter) {
  FaultPlan::arm(FaultPlan::parse("svc.slow@1"));
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  const std::vector<char> framed = frame(encode_where(4));
  ASSERT_EQ(::write(in_pipe[1], framed.data(), framed.size()),
            static_cast<ssize_t>(framed.size()));
  ::close(in_pipe[1]);
  // No deadline configured: the stall is pure latency, the answer still
  // arrives and is still correct.
  EXPECT_FALSE(serve_stream(*service_, in_pipe[0], out_pipe[1]));
  const std::vector<char> reply = read_reply(out_pipe[0]);
  ASSERT_EQ(status_of(reply), Status::kOk);
  CheckpointReader r(reply);
  (void)r.get_u32();
  EXPECT_EQ(r.get_u32(),
            static_cast<std::uint32_t>(service_->artifact().where(4)));
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);
}

// --- the seeded sweep -------------------------------------------------------

TEST_F(ChaosServiceTest, SeededFaultSweepKeepsTheDaemonAnswering) {
  for (std::uint64_t draw = 0; draw < 12; ++draw) {
    const std::uint64_t seed = oms::testing::draw_seed(draw);
    FaultPlan plan = FaultPlan::seeded_service(seed);
    std::string label = "[";
    label += plan.describe();
    label += "] (seed ";
    label += std::to_string(seed);
    label += ")";
    std::string path = ::testing::TempDir();
    path += "/oms_chaos_sweep_";
    path += std::to_string(draw);
    path += ".sock";
    FaultPlan::arm(plan);
    ServeOptions options;
    options.idle_timeout_ms = 100; // svc.slow must end in the timeout close
    std::thread server([&] { serve_unix_socket(*service_, path, options); });

    // Three well-formed sessions: under any schedule every reply is either
    // the correct typed answer or the connection closed cleanly — never
    // garbage, never a hang.
    for (int session = 0; session < 3; ++session) {
      const int fd = connect_to(path);
      ASSERT_GE(fd, 0) << label;
      for (std::uint64_t id = 0; id < 4; ++id) {
        if (!send_frame(fd, encode_where(id))) {
          break; // torn by an injected fault: the clean-close arm
        }
        const std::vector<char> reply = read_reply(fd);
        if (reply.empty()) {
          break; // clean close: acceptable under injected faults
        }
        ASSERT_EQ(status_of(reply), Status::kOk)
            << label << " session " << session << " id " << id;
        CheckpointReader r(reply);
        (void)r.get_u32();
        EXPECT_EQ(r.get_u32(),
                  static_cast<std::uint32_t>(service_->artifact().where(id)))
            << label << " session " << session << " id " << id;
      }
      ::close(fd);
    }

    // Disarmed, the daemon must still answer a fresh WHERE before shutdown.
    FaultPlan::disarm();
    expect_daemon_answers(path, label);
    shutdown_daemon(path);
    server.join();
  }
}

// --- the self-healing client under injected tears ---------------------------

TEST_F(ChaosServiceTest, ClientHealsOneTornConnectionBitIdentically) {
  const std::string path = ::testing::TempDir() + "/oms_chaos_heal.sock";
  std::thread server([&] { serve_unix_socket(*service_, path); });

  // Wait for the daemon, then retire the probe's worker before arming so
  // the injected tear hits the client under test, not the probe session.
  const int probe = connect_to(path);
  ASSERT_GE(probe, 0);
  ::close(probe);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  FaultPlan::arm(FaultPlan::parse("svc.read@1"));

  ClientConfig config;
  config.backoff_base_ms = 1;
  config.backoff_cap_ms = 10;
  ServiceClient client(path, config);
  // The first request's read is torn by the fault; the client must
  // reconnect, resend, and from then on answer bit-identically to the
  // artifact for every lookup flavor.
  for (std::uint64_t id = 0; id < 50; ++id) {
    EXPECT_EQ(client.where(id),
              static_cast<std::uint32_t>(service_->artifact().where(id)))
        << "id " << id;
  }
  EXPECT_EQ(client.connects(), 2)
      << "exactly one reconnect for exactly one injected tear";
  const std::vector<std::uint64_t> ids{0, 7, 13, 42};
  const std::vector<std::uint32_t> blocks = client.batch(ids);
  ASSERT_EQ(blocks.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(blocks[i],
              static_cast<std::uint32_t>(service_->artifact().where(ids[i])));
  }
  EXPECT_GT(client.stats().requests_served, 50u);
  client.disconnect();

  shutdown_daemon(path);
  server.join();
}

} // namespace
} // namespace oms::service
