/// \file test_checkpoint.cpp
/// \brief Crash-safe checkpoint/resume: serialization round-trips, corrupt
///        and truncated checkpoint files, resume validation, and the central
///        guarantee — a run killed right after a snapshot (the deterministic
///        checkpoint.die fault) resumes bit-identically to an uninterrupted
///        run, for every checkpointable algorithm including both buffered
///        inner engines.
#include "oms/stream/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "oms/core/online_multisection.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/partition/fennel.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/ldg.hpp"
#include "oms/stream/buffered_stream_driver.hpp"
#include "oms/stream/metis_stream.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/util/fault_injection.hpp"
#include "oms/util/io_error.hpp"

namespace oms {
namespace {

constexpr BlockId kK = 4;
constexpr std::uint64_t kSeed = 3;

class CheckpointTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const CsrGraph graph = gen::barabasi_albert(1500, 3, 11);
    graph_path_ = new std::string(::testing::TempDir() + "/oms_ckpt.graph");
    write_metis(graph, *graph_path_);
    num_nodes_ = graph.num_nodes();
    num_edges_ = graph.num_edges();
  }

  static void TearDownTestSuite() {
    std::remove(graph_path_->c_str());
    delete graph_path_;
  }

  void SetUp() override { FaultPlan::disarm(); }
  void TearDown() override { FaultPlan::disarm(); }

  std::string temp_path(const char* name) {
    return ::testing::TempDir() + "/oms_ckpt_" + name;
  }

  static std::unique_ptr<OnePassAssigner> make_assigner(const std::string& algo) {
    const auto total = static_cast<NodeWeight>(num_nodes_);
    PartitionConfig pc;
    pc.k = kK;
    pc.seed = kSeed;
    if (algo == "fennel") {
      return std::make_unique<FennelPartitioner>(num_nodes_, num_edges_, total, pc);
    }
    if (algo == "ldg") {
      return std::make_unique<LdgPartitioner>(num_nodes_, total, pc);
    }
    if (algo == "hashing") {
      return std::make_unique<HashingPartitioner>(num_nodes_, total, pc);
    }
    OmsConfig config;
    config.seed = kSeed;
    return std::make_unique<OnlineMultisection>(num_nodes_, num_edges_, total,
                                                kK, config);
  }

  /// One sequential pass, optionally checkpointing and/or resuming.
  static std::vector<BlockId> run_algo(const std::string& algo,
                                       const CheckpointConfig& ckpt = {},
                                       const CheckpointState* resume = nullptr) {
    auto assigner = make_assigner(algo);
    MetisNodeStream stream(*graph_path_);
    return run_one_pass_resumable(stream, *assigner, algo, kSeed, ckpt, resume)
        .assignment;
  }

  static std::string* graph_path_;
  static NodeId num_nodes_;
  static EdgeIndex num_edges_;
};

std::string* CheckpointTest::graph_path_ = nullptr;
NodeId CheckpointTest::num_nodes_ = 0;
EdgeIndex CheckpointTest::num_edges_ = 0;

// --- serialization primitives ----------------------------------------------

TEST_F(CheckpointTest, WriterReaderRoundTrip) {
  CheckpointWriter w;
  w.put_u32(7);
  w.put_u64(1ULL << 40);
  w.put_i64(-12345);
  w.put_f64(2.5);
  w.put_string("hello checkpoint");
  CheckpointReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 7u);
  EXPECT_EQ(r.get_u64(), 1ULL << 40);
  EXPECT_EQ(r.get_i64(), -12345);
  EXPECT_EQ(r.get_f64(), 2.5);
  EXPECT_EQ(r.get_string(), "hello checkpoint");
  EXPECT_NO_THROW(r.expect_end());
}

TEST_F(CheckpointTest, ReaderThrowsOnShortPayloadAndTrailingBytes) {
  CheckpointWriter w;
  w.put_u32(1);
  {
    CheckpointReader r(w.bytes());
    (void)r.get_u32();
    EXPECT_THROW((void)r.get_u64(), IoError); // past the end
  }
  {
    CheckpointReader r(w.bytes());
    EXPECT_THROW(r.expect_end(), IoError); // unread trailing bytes
  }
}

TEST_F(CheckpointTest, FileRoundTripPreservesMetaAndPayload) {
  CheckpointMeta meta;
  meta.algo = "fennel";
  meta.k = kK;
  meta.seed = kSeed;
  meta.num_nodes = 123;
  meta.nodes_streamed = 64;
  meta.input_offset = 4096;
  meta.input_line_no = 65;
  const std::vector<char> payload{'a', 'b', 'c', '\0', 'x'};
  const std::string path = temp_path("roundtrip.bin");
  write_checkpoint_file(path, meta, payload);
  const CheckpointState state = read_checkpoint_file(path);
  EXPECT_EQ(state.meta.algo, meta.algo);
  EXPECT_EQ(state.meta.k, meta.k);
  EXPECT_EQ(state.meta.seed, meta.seed);
  EXPECT_EQ(state.meta.num_nodes, meta.num_nodes);
  EXPECT_EQ(state.meta.nodes_streamed, meta.nodes_streamed);
  EXPECT_EQ(state.meta.input_offset, meta.input_offset);
  EXPECT_EQ(state.meta.input_line_no, meta.input_line_no);
  EXPECT_EQ(state.payload, payload);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, CorruptTruncatedAndForeignFilesAllThrow) {
  CheckpointMeta meta;
  meta.algo = "oms";
  meta.k = kK;
  meta.seed = kSeed;
  meta.num_nodes = 99;
  const std::vector<char> payload(64, 'p');
  const std::string good = temp_path("good.bin");
  write_checkpoint_file(good, meta, payload);
  std::ifstream in(good, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const std::string path = temp_path("broken.bin");
  const auto rewrite = [&](const std::vector<char>& data) {
    std::ofstream out(path, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Flip one byte everywhere: magic, version, meta, payload, CRC.
  for (std::size_t at = 0; at < bytes.size(); at += 7) {
    std::vector<char> corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    rewrite(corrupt);
    EXPECT_THROW((void)read_checkpoint_file(path), IoError) << "byte " << at;
  }
  // Truncate at several depths.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    rewrite(std::vector<char>(bytes.begin(),
                              bytes.begin() + static_cast<std::ptrdiff_t>(keep)));
    EXPECT_THROW((void)read_checkpoint_file(path), IoError) << "keep " << keep;
  }
  // A file that was never a checkpoint.
  rewrite(std::vector<char>(100, 'z'));
  EXPECT_THROW((void)read_checkpoint_file(path), IoError);
  // Missing entirely.
  std::remove(path.c_str());
  EXPECT_THROW((void)read_checkpoint_file(path), IoError);
  std::remove(good.c_str());
}

TEST_F(CheckpointTest, ValidateResumeRefusesEveryMismatch) {
  CheckpointMeta meta;
  meta.algo = "oms";
  meta.k = kK;
  meta.seed = kSeed;
  meta.num_nodes = num_nodes_;
  EXPECT_NO_THROW(validate_resume(meta, "oms", kK, kSeed, num_nodes_));
  EXPECT_THROW(validate_resume(meta, "fennel", kK, kSeed, num_nodes_), IoError);
  EXPECT_THROW(validate_resume(meta, "oms", kK + 1, kSeed, num_nodes_), IoError);
  EXPECT_THROW(validate_resume(meta, "oms", kK, kSeed + 1, num_nodes_), IoError);
  EXPECT_THROW(validate_resume(meta, "oms", kK, kSeed, num_nodes_ + 1), IoError);
}

// --- kill/resume bit-identity ----------------------------------------------

TEST_F(CheckpointTest, KilledRunResumesBitIdenticallyForEveryOnePassAlgo) {
  for (const std::string algo : {"oms", "fennel", "ldg", "hashing"}) {
    const std::vector<BlockId> golden = run_algo(algo);

    const std::string ckpt_path = temp_path((algo + "_kill.bin").c_str());
    CheckpointConfig ckpt;
    ckpt.path = ckpt_path;
    ckpt.every_nodes = 400;

    // Phase 1: die right after the second snapshot lands (kill -9 stand-in).
    FaultPlan::arm(FaultPlan::parse("checkpoint.die@2"));
    EXPECT_THROW((void)run_algo(algo, ckpt), IoError) << algo;
    FaultPlan::disarm();

    // Phase 2: load, validate, resume — and keep checkpointing, so the resumed
    // run exercises the snapshot path too.
    const CheckpointState state = read_checkpoint_file(ckpt_path);
    EXPECT_EQ(state.meta.nodes_streamed, 800u) << algo;
    EXPECT_NO_THROW(
        validate_resume(state.meta, algo, kK, kSeed, num_nodes_));
    const std::vector<BlockId> resumed = run_algo(algo, ckpt, &state);
    EXPECT_EQ(resumed, golden) << algo << ": resumed run diverged";
    std::remove(ckpt_path.c_str());
  }
}

TEST_F(CheckpointTest, KilledBufferedRunResumesBitIdenticallyForBothEngines) {
  for (const bool multilevel : {false, true}) {
    BufferedConfig config;
    config.buffer_size = 200;
    config.seed = kSeed;
    if (multilevel) {
      config.engine = BufferedEngine::kMultilevel;
    }
    const std::string algo = buffered_checkpoint_algo_id(config);
    const std::vector<BlockId> golden =
        buffered_partition_from_file(*graph_path_, kK, config).assignment;

    const std::string ckpt_path = temp_path((algo + "_kill.bin").c_str());
    CheckpointConfig ckpt;
    ckpt.path = ckpt_path;
    ckpt.every_nodes = 500; // lands on the first buffer boundary >= 500

    FaultPlan::arm(FaultPlan::parse("checkpoint.die@1"));
    EXPECT_THROW((void)buffered_partition_from_file_resumable(
                     *graph_path_, kK, config, ckpt, nullptr),
                 IoError)
        << algo;
    FaultPlan::disarm();

    const CheckpointState state = read_checkpoint_file(ckpt_path);
    EXPECT_NO_THROW(validate_resume(state.meta, algo, kK, kSeed, num_nodes_));
    const std::vector<BlockId> resumed =
        buffered_partition_from_file_resumable(*graph_path_, kK, config, ckpt,
                                               &state)
            .assignment;
    EXPECT_EQ(resumed, golden) << algo << ": resumed run diverged";
    std::remove(ckpt_path.c_str());
  }
}

TEST_F(CheckpointTest, ResumeFromEverySnapshotMatchesGolden) {
  // Resume bit-identity must hold from *any* cadence point, not just one:
  // snapshot at each multiple of 300 nodes, resume from each in turn.
  const std::string algo = "fennel";
  const std::vector<BlockId> golden = run_algo(algo);
  for (std::uint64_t die = 1; die <= 4; ++die) {
    const std::string ckpt_path = temp_path("sweep.bin");
    CheckpointConfig ckpt;
    ckpt.path = ckpt_path;
    ckpt.every_nodes = 300;
    FaultPlan::arm(
        FaultPlan::parse("checkpoint.die@" + std::to_string(die)));
    EXPECT_THROW((void)run_algo(algo, ckpt), IoError);
    FaultPlan::disarm();
    const CheckpointState state = read_checkpoint_file(ckpt_path);
    EXPECT_EQ(state.meta.nodes_streamed, die * 300) << "die " << die;
    const std::vector<BlockId> resumed = run_algo(algo, ckpt, &state);
    EXPECT_EQ(resumed, golden) << "resumed from snapshot " << die;
    std::remove(ckpt_path.c_str());
  }
}

TEST_F(CheckpointTest, PayloadAlgorithmMismatchSurfacesCleanly) {
  // A checkpoint whose payload belongs to a different algorithm family (here:
  // a buffered payload fed to a one-pass assigner) must raise IoError through
  // the bounds-checked reader, never misload state.
  BufferedConfig config;
  config.buffer_size = 200;
  config.seed = kSeed;
  const std::string ckpt_path = temp_path("mismatch.bin");
  CheckpointConfig ckpt;
  ckpt.path = ckpt_path;
  ckpt.every_nodes = 500;
  FaultPlan::arm(FaultPlan::parse("checkpoint.die@1"));
  EXPECT_THROW((void)buffered_partition_from_file_resumable(*graph_path_, kK,
                                                            config, ckpt,
                                                            nullptr),
               IoError);
  FaultPlan::disarm();
  CheckpointState state = read_checkpoint_file(ckpt_path);
  // Skip validate_resume on purpose (its algo check would already refuse) to
  // prove the payload layer alone cannot be tricked into silent corruption.
  EXPECT_THROW((void)run_algo("fennel", CheckpointConfig{}, &state), IoError);
  std::remove(ckpt_path.c_str());
}

TEST_F(CheckpointTest, WindowRefusesCheckpointingWithCleanError) {
  // WindowPartitioner keeps delayed in-flight nodes and does not serialize;
  // asking it to checkpoint must fail with IoError at the first snapshot.
  CheckpointConfig ckpt;
  ckpt.path = temp_path("window.bin");
  ckpt.every_nodes = 100;
  WindowConfig wc;
  wc.window_size = 32;
  wc.seed = kSeed;
  WindowPartitioner window(num_nodes_, static_cast<NodeWeight>(num_nodes_), wc,
                           kK);
  MetisNodeStream stream(*graph_path_);
  try {
    (void)run_one_pass_resumable(stream, window, "window", kSeed, ckpt, nullptr);
    FAIL() << "window checkpointing did not fail";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos)
        << e.what();
  }
  std::remove(ckpt.path.c_str());
}

} // namespace
} // namespace oms
