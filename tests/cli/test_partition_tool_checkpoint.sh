#!/usr/bin/env bash
# CLI checkpoint/kill/resume test: a run killed right after a snapshot (via
# the deterministic OMS_FAULTS=checkpoint.die fault) must resume from its
# checkpoint into a partition bit-identical to an uninterrupted run, and
# every resume-validation failure (missing/corrupt/mismatched checkpoint)
# must exit 2 with a clean "error:" message. Also covers the --on-error
# skip policy and the flag-combination conflicts around checkpointing.
# Usage: test_partition_tool_checkpoint.sh <path-to-partition_tool>
set -u

tool="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failures=0

check_clean_error() {
  local name="$1"
  local expected_exit="$2"
  shift 2
  local out
  out="$("$@" 2>&1)"
  local code=$?
  if [ "$code" -ne "$expected_exit" ]; then
    echo "FAIL [$name]: exit $code, expected $expected_exit"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  if [ "$code" -ne 0 ] && ! printf '%s' "$out" | grep -q "error:"; then
    echo "FAIL [$name]: no 'error:' message in output"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$name]"
}

check_identical() {
  local name="$1"
  local a="$2"
  local b="$3"
  if cmp -s "$a" "$b"; then
    echo "ok   [$name]"
  else
    echo "FAIL [$name]: resumed partition differs from the uninterrupted run"
    failures=$((failures + 1))
  fi
}

# A ring large enough for several checkpoint snapshots.
graph="$tmpdir/ring.graph"
awk 'BEGIN {
  n = 2000;
  printf "%d %d\n", n, n;
  for (i = 1; i <= n; i++) {
    l = i - 1; if (l < 1) l = n;
    r = i + 1; if (r > n) r = 1;
    printf "%d %d\n", l, r;
  }
}' > "$graph"

# --- kill + resume is bit-identical, per checkpointable algorithm -----------

for algo in oms fennel ldg hashing; do
  base="$tmpdir/${algo}_base.txt"
  resumed="$tmpdir/${algo}_resumed.txt"
  ckpt="$tmpdir/${algo}.ckpt"
  check_clean_error "$algo uninterrupted baseline" 0 \
    "$tool" "$graph" --k 4 --algo "$algo" --from-disk --output "$base"
  # The injected crash fires right after the first snapshot is durable.
  check_clean_error "$algo killed after snapshot" 1 \
    env OMS_FAULTS=checkpoint.die@1 \
    "$tool" "$graph" --k 4 --algo "$algo" \
    --checkpoint "$ckpt" --checkpoint-every 512 --output "$resumed"
  check_clean_error "$algo resume" 0 \
    "$tool" "$graph" --k 4 --algo "$algo" --resume "$ckpt" --output "$resumed"
  check_identical "$algo resumed run matches baseline" "$base" "$resumed"
done

# Buffered, both inner engines (the checkpoint carries the engine id).
for engine in lp multilevel; do
  base="$tmpdir/buffered_${engine}_base.txt"
  resumed="$tmpdir/buffered_${engine}_resumed.txt"
  ckpt="$tmpdir/buffered_${engine}.ckpt"
  check_clean_error "buffered $engine uninterrupted baseline" 0 \
    "$tool" "$graph" --k 4 --algo buffered --buffered-engine "$engine" \
    --from-disk --buffer-size 256 --output "$base"
  check_clean_error "buffered $engine killed after snapshot" 1 \
    env OMS_FAULTS=checkpoint.die@1 \
    "$tool" "$graph" --k 4 --algo buffered --buffered-engine "$engine" \
    --buffer-size 256 --checkpoint "$ckpt" --checkpoint-every 512 \
    --output "$resumed"
  check_clean_error "buffered $engine resume" 0 \
    "$tool" "$graph" --k 4 --algo buffered --buffered-engine "$engine" \
    --buffer-size 256 --resume "$ckpt" --output "$resumed"
  check_identical "buffered $engine resumed run matches baseline" \
    "$base" "$resumed"
done

# Resume may keep checkpointing onward: kill again later, resume again.
ckpt="$tmpdir/chain.ckpt"
chain="$tmpdir/chain.txt"
check_clean_error "chained kill #1" 1 \
  env OMS_FAULTS=checkpoint.die@1 \
  "$tool" "$graph" --k 4 --algo fennel \
  --checkpoint "$ckpt" --checkpoint-every 400
check_clean_error "chained kill #2 (post-resume)" 1 \
  env OMS_FAULTS=checkpoint.die@1 \
  "$tool" "$graph" --k 4 --algo fennel \
  --checkpoint "$ckpt" --checkpoint-every 400 --resume "$ckpt"
check_clean_error "chained final resume" 0 \
  "$tool" "$graph" --k 4 --algo fennel --resume "$ckpt" --output "$chain"
check_identical "chained resume matches baseline" "$tmpdir/fennel_base.txt" "$chain"

# --- resume validation: every refusal is exit 2 with error: -----------------

good_ckpt="$tmpdir/fennel.ckpt" # written by the fennel kill above (k=4)

check_clean_error "resume from missing file" 2 \
  "$tool" "$graph" --k 4 --algo fennel --resume "$tmpdir/nope.ckpt"
check_clean_error "resume with wrong algorithm" 2 \
  "$tool" "$graph" --k 4 --algo ldg --resume "$good_ckpt"
check_clean_error "resume with wrong k" 2 \
  "$tool" "$graph" --k 8 --algo fennel --resume "$good_ckpt"
check_clean_error "resume with wrong seed" 2 \
  "$tool" "$graph" --k 4 --algo fennel --seed 99 --resume "$good_ckpt"
check_clean_error "resume with wrong engine" 2 \
  "$tool" "$graph" --k 4 --algo buffered --buffered-engine multilevel \
  --resume "$tmpdir/buffered_lp.ckpt"

# Unsupported version: patch the u32 version field at byte offset 8.
ver_ckpt="$tmpdir/version.ckpt"
cp "$good_ckpt" "$ver_ckpt"
printf '\x09' | dd of="$ver_ckpt" bs=1 seek=8 count=1 conv=notrunc 2>/dev/null
check_clean_error "resume from future-version checkpoint" 2 \
  "$tool" "$graph" --k 4 --algo fennel --resume "$ver_ckpt"

# A flipped payload byte must be caught by the CRC, never resumed from.
bad_ckpt="$tmpdir/corrupt.ckpt"
cp "$good_ckpt" "$bad_ckpt"
printf '\xff' | dd of="$bad_ckpt" bs=1 seek=60 count=1 conv=notrunc 2>/dev/null
check_clean_error "resume from corrupt checkpoint" 2 \
  "$tool" "$graph" --k 4 --algo fennel --resume "$bad_ckpt"

# A truncated checkpoint is refused too.
trunc_ckpt="$tmpdir/trunc.ckpt"
head -c 40 "$good_ckpt" > "$trunc_ckpt"
check_clean_error "resume from truncated checkpoint" 2 \
  "$tool" "$graph" --k 4 --algo fennel --resume "$trunc_ckpt"

# --- flag conflicts ---------------------------------------------------------

check_clean_error "checkpoint with --pipeline" 2 \
  "$tool" "$graph" --k 4 --checkpoint "$tmpdir/x.ckpt" --pipeline
check_clean_error "checkpoint with window algo" 2 \
  "$tool" "$graph" --k 4 --algo window --checkpoint "$tmpdir/x.ckpt"
check_clean_error "zero checkpoint cadence" 2 \
  "$tool" "$graph" --k 4 --checkpoint "$tmpdir/x.ckpt" --checkpoint-every 0

# --- --on-error skip policy -------------------------------------------------

# One malformed line: abort policy fails, skip policy completes and reports.
awk 'BEGIN {
  n = 200;
  printf "%d %d\n", n, n;
  for (i = 1; i <= n; i++) {
    if (i == 100) { printf "xyz\n"; continue; }
    l = i - 1; if (l < 1) l = n;
    r = i + 1; if (r > n) r = 1;
    printf "%d %d\n", l, r;
  }
}' > "$tmpdir/oneline.graph"
check_clean_error "malformed line aborts by default" 1 \
  "$tool" "$tmpdir/oneline.graph" --k 2 --from-disk
skip_out="$("$tool" "$tmpdir/oneline.graph" --k 2 --from-disk --on-error skip 2>&1)"
if [ $? -ne 0 ]; then
  echo "FAIL [skip policy completes]: non-zero exit"
  echo "$skip_out" | sed 's/^/    /'
  failures=$((failures + 1))
elif ! printf '%s' "$skip_out" | grep -q "skipped 1 malformed line"; then
  echo "FAIL [skip policy completes]: missing skip summary"
  echo "$skip_out" | sed 's/^/    /'
  failures=$((failures + 1))
else
  echo "ok   [skip policy completes]"
fi

# An exhausted skip budget turns back into a clean failure.
check_clean_error "skip budget exhausts" 1 \
  "$tool" "$tmpdir/oneline.graph" --k 2 --from-disk --on-error skip \
  --error-budget 0

# skip needs a streaming path to act on.
check_clean_error "skip without --from-disk" 2 \
  "$tool" "$tmpdir/oneline.graph" --k 2 --on-error skip

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI checkpoint check(s) failed"
  exit 1
fi
echo "all CLI checkpoint checks passed"
