#!/usr/bin/env bash
# CLI error-channel test: malformed graph *content* — METIS on the
# --from-disk streaming path, the pipelined path, and the in-memory loader,
# plus edge-list inputs on the sequential and pipelined vertex-cut paths —
# must make partition_tool exit non-zero with a clean "error:" message —
# never SIGABRT (exit 134).
# Usage: test_partition_tool_errors.sh <path-to-partition_tool>
set -u

tool="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failures=0

check_clean_error() {
  local name="$1"
  local expected_exit="$2"
  shift 2
  local out
  out="$("$@" 2>&1)"
  local code=$?
  if [ "$code" -ne "$expected_exit" ]; then
    echo "FAIL [$name]: exit $code, expected $expected_exit"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  if [ "$code" -ne 0 ] && ! printf '%s' "$out" | grep -q "error:"; then
    echo "FAIL [$name]: no 'error:' message in output"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$name]"
}

# A well-formed control file: the tool must still succeed on it.
printf '3 2\n2\n1 3\n2\n' > "$tmpdir/good.graph"
check_clean_error "well-formed control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --from-disk

# Malformed header.
printf 'not a header\n' > "$tmpdir/badheader.graph"
check_clean_error "malformed header" 1 \
  "$tool" "$tmpdir/badheader.graph" --k 2 --from-disk

# Out-of-range neighbor id.
printf '2 1\n2\n9\n' > "$tmpdir/range.graph"
check_clean_error "neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2 --from-disk

# Edge-weight flag set but a weight is missing.
printf '2 1 1\n2 5\n1\n' > "$tmpdir/noweight.graph"
check_clean_error "missing edge weight" 1 \
  "$tool" "$tmpdir/noweight.graph" --k 2 --from-disk

# Non-numeric token in an adjacency list.
printf '2 1\n2\nxyz\n' > "$tmpdir/garbage.graph"
check_clean_error "non-numeric token" 1 \
  "$tool" "$tmpdir/garbage.graph" --k 2 --from-disk

# The pipelined path (producer thread) must surface the same errors cleanly.
check_clean_error "pipelined well-formed control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --pipeline --io-threads 2
check_clean_error "pipelined neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2 --pipeline
check_clean_error "pipelined non-numeric token" 1 \
  "$tool" "$tmpdir/garbage.graph" --k 2 --pipeline --io-threads 2

# The in-memory loader (no --from-disk) now rides the IoError channel too.
check_clean_error "in-memory neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2
check_clean_error "in-memory malformed header" 1 \
  "$tool" "$tmpdir/badheader.graph" --k 2

# --- Disk-native buffered and window models ---------------------------------

# Both stream from disk now: well-formed controls must succeed, sequential
# and pipelined, with the new tuning flags accepted.
check_clean_error "buffered from-disk control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --from-disk \
  --buffer-size 2 --refine-iters 1
check_clean_error "buffered pipelined control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --pipeline
check_clean_error "window from-disk control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --from-disk --window-size 2
check_clean_error "window pipelined control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --pipeline
check_clean_error "buffered in-memory with flags" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffer-size 100 \
  --refine-iters 0
check_clean_error "window in-memory with flags" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --window-size 10

# IoError mid-buffer: malformed content must exit 1 from the buffered and
# window disk drivers (sequential and pipelined), never hang or SIGABRT.
check_clean_error "buffered from-disk neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2 --algo buffered --from-disk
check_clean_error "buffered pipelined non-numeric token" 1 \
  "$tool" "$tmpdir/garbage.graph" --k 2 --algo buffered --pipeline
check_clean_error "window from-disk non-numeric token" 1 \
  "$tool" "$tmpdir/garbage.graph" --k 2 --algo window --from-disk
check_clean_error "window pipelined neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2 --algo window --pipeline

# Truly-unsupported combinations keep a single exit-2 diagnostic: the window
# commits in stream order, so more than one pipeline consumer is impossible.
check_clean_error "window pipelined multi-consumer" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --pipeline --io-threads 2
check_clean_error "window pipelined all-hardware consumers" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --pipeline --io-threads 0

# Flag validation: out-of-range tuning values are usage errors (exit 2).
check_clean_error "zero buffer size" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffer-size 0
check_clean_error "negative refine iterations" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --refine-iters -1
check_clean_error "zero window size" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --window-size 0
check_clean_error "buffer size beyond the node-id range" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffer-size 99999999999

# --- Buffered inner-engine selection ----------------------------------------

# Both engines are accepted on every buffered entry point; the multilevel
# engine must work from disk and pipelined too.
check_clean_error "buffered lp engine control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffered-engine lp
check_clean_error "buffered multilevel engine control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffered-engine multilevel
check_clean_error "buffered multilevel engine from-disk" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffered-engine multilevel \
  --from-disk
check_clean_error "buffered multilevel engine pipelined" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffered-engine multilevel \
  --pipeline

# Bad engine values and engine flags on non-buffered algorithms are usage
# errors (exit 2).
check_clean_error "unknown buffered engine" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo buffered --buffered-engine turbo
check_clean_error "engine flag with window algo" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo window --buffered-engine multilevel

# Node-weighted graphs cannot stream from disk (Lmax needs the total weight
# upfront): rejected before any parsing with the usage-level exit code.
printf '2 1 10\n5 2\n7 1\n' > "$tmpdir/weighted.graph"
check_clean_error "buffered from-disk node-weighted graph" 2 \
  "$tool" "$tmpdir/weighted.graph" --k 2 --algo buffered --from-disk

# --- Edge-list (vertex-cut) inputs -----------------------------------------

# A well-formed control file (extension autodetection picks the format).
printf '# comment\n0 1\n1 2\n2 0\n' > "$tmpdir/good.edgelist"
check_clean_error "edgelist well-formed control" 0 \
  "$tool" "$tmpdir/good.edgelist" --k 2
check_clean_error "edgelist pipelined control" 0 \
  "$tool" "$tmpdir/good.edgelist" --k 2 --pipeline
check_clean_error "edgelist explicit --format override" 0 \
  "$tool" "$tmpdir/good.edgelist" --format edgelist --algo dbh --k 2

# Non-numeric endpoint.
printf '0 1\n2 xyz\n' > "$tmpdir/garbage.edgelist"
check_clean_error "edgelist non-numeric endpoint" 1 \
  "$tool" "$tmpdir/garbage.edgelist" --k 2
check_clean_error "edgelist pipelined non-numeric endpoint" 1 \
  "$tool" "$tmpdir/garbage.edgelist" --k 2 --pipeline

# Truncated last line (single endpoint).
printf '0 1\n1 2\n3\n' > "$tmpdir/trunc.edgelist"
check_clean_error "edgelist truncated last line" 1 \
  "$tool" "$tmpdir/trunc.edgelist" --k 2
check_clean_error "edgelist pipelined truncated last line" 1 \
  "$tool" "$tmpdir/trunc.edgelist" --k 2 --pipeline

# Empty file (and a comments-only file is just as empty).
: > "$tmpdir/empty.edgelist"
printf '# nothing\n# here\n' > "$tmpdir/comments.edgelist"
check_clean_error "edgelist empty file" 1 \
  "$tool" "$tmpdir/empty.edgelist" --k 2
check_clean_error "edgelist pipelined empty file" 1 \
  "$tool" "$tmpdir/empty.edgelist" --k 2 --pipeline
check_clean_error "edgelist comments-only file" 1 \
  "$tool" "$tmpdir/comments.edgelist" --k 2

# Format/algo mismatches are usage errors (exit 2), not IoErrors.
check_clean_error "edgelist algo on metis input" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --algo hdrf
check_clean_error "node algo on edgelist input" 2 \
  "$tool" "$tmpdir/good.edgelist" --k 2 --algo fennel
check_clean_error "engine flag with edgelist algo" 2 \
  "$tool" "$tmpdir/good.edgelist" --k 2 --algo dbh --buffered-engine lp

# --- Flag-syntax errors (the shared oms::cli parser) ------------------------
# Every bad-flag path exits 2 with an "error:" line before the usage text —
# the tools share one parser, so these hold for oms_serve as well.
check_clean_error "unknown option" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --frobnicate
check_clean_error "missing value for flag" 2 \
  "$tool" "$tmpdir/good.graph" --k
check_clean_error "non-numeric k" 2 \
  "$tool" "$tmpdir/good.graph" --k lots
check_clean_error "non-numeric epsilon" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --epsilon wide
check_clean_error "negative seed rejected as u64" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 --seed -1
check_clean_error "no input graph" 2 \
  "$tool" --k 2

# --- Observability flags ----------------------------------------------------

# --metrics-out and --progress must leave stdout byte-identical to a plain
# run: the heartbeat goes to stderr, the JSON to the file. Between any two
# runs only the wall-clock timings may differ, so normalize those fields
# before comparing.
normalize_times() { sed -E 's/[0-9.e+-]+ s/T s/g' "$1"; }
"$tool" "$tmpdir/good.graph" --k 2 --from-disk \
  > "$tmpdir/plain.out" 2> /dev/null
"$tool" "$tmpdir/good.graph" --k 2 --from-disk \
  --metrics-out "$tmpdir/metrics.json" --progress \
  > "$tmpdir/instrumented.out" 2> /dev/null
if cmp -s <(normalize_times "$tmpdir/plain.out") \
          <(normalize_times "$tmpdir/instrumented.out"); then
  echo "ok   [instrumented run stdout byte-identical to plain run]"
else
  echo "FAIL [instrumented run stdout byte-identical to plain run]"
  diff <(normalize_times "$tmpdir/plain.out") \
       <(normalize_times "$tmpdir/instrumented.out") | sed 's/^/    /'
  failures=$((failures + 1))
fi
if grep -q '"schema":"oms.metrics.v1"' "$tmpdir/metrics.json" &&
   grep -q '"stream.nodes":3' "$tmpdir/metrics.json"; then
  echo "ok   [--metrics-out wrote a v1 document with streamed counters]"
else
  echo "FAIL [--metrics-out document malformed or counters missing]"
  sed 's/^/    /' "$tmpdir/metrics.json" 2> /dev/null
  failures=$((failures + 1))
fi

# An unwritable metrics path is a clean exit-2 "error:" after the summary.
check_clean_error "unwritable --metrics-out path" 2 \
  "$tool" "$tmpdir/good.graph" --k 2 \
  --metrics-out "$tmpdir/no/such/dir/metrics.json"

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI error-channel check(s) failed"
  exit 1
fi
echo "all CLI error-channel checks passed"
