#!/usr/bin/env bash
# CLI error-channel test: malformed METIS *content* — on the --from-disk
# streaming path, the pipelined path, and the in-memory loader alike — must
# make partition_tool exit non-zero with a clean "error:" message — never
# SIGABRT (exit 134).
# Usage: test_partition_tool_errors.sh <path-to-partition_tool>
set -u

tool="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failures=0

check_clean_error() {
  local name="$1"
  local expected_exit="$2"
  shift 2
  local out
  out="$("$@" 2>&1)"
  local code=$?
  if [ "$code" -ne "$expected_exit" ]; then
    echo "FAIL [$name]: exit $code, expected $expected_exit"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  if [ "$code" -ne 0 ] && ! printf '%s' "$out" | grep -q "error:"; then
    echo "FAIL [$name]: no 'error:' message in output"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$name]"
}

# A well-formed control file: the tool must still succeed on it.
printf '3 2\n2\n1 3\n2\n' > "$tmpdir/good.graph"
check_clean_error "well-formed control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --from-disk

# Malformed header.
printf 'not a header\n' > "$tmpdir/badheader.graph"
check_clean_error "malformed header" 1 \
  "$tool" "$tmpdir/badheader.graph" --k 2 --from-disk

# Out-of-range neighbor id.
printf '2 1\n2\n9\n' > "$tmpdir/range.graph"
check_clean_error "neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2 --from-disk

# Edge-weight flag set but a weight is missing.
printf '2 1 1\n2 5\n1\n' > "$tmpdir/noweight.graph"
check_clean_error "missing edge weight" 1 \
  "$tool" "$tmpdir/noweight.graph" --k 2 --from-disk

# Non-numeric token in an adjacency list.
printf '2 1\n2\nxyz\n' > "$tmpdir/garbage.graph"
check_clean_error "non-numeric token" 1 \
  "$tool" "$tmpdir/garbage.graph" --k 2 --from-disk

# The pipelined path (producer thread) must surface the same errors cleanly.
check_clean_error "pipelined well-formed control" 0 \
  "$tool" "$tmpdir/good.graph" --k 2 --pipeline --io-threads 2
check_clean_error "pipelined neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2 --pipeline
check_clean_error "pipelined non-numeric token" 1 \
  "$tool" "$tmpdir/garbage.graph" --k 2 --pipeline --io-threads 2

# The in-memory loader (no --from-disk) now rides the IoError channel too.
check_clean_error "in-memory neighbor out of range" 1 \
  "$tool" "$tmpdir/range.graph" --k 2
check_clean_error "in-memory malformed header" 1 \
  "$tool" "$tmpdir/badheader.graph" --k 2

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI error-channel check(s) failed"
  exit 1
fi
echo "all CLI error-channel checks passed"
