#include <gtest/gtest.h>

#include <set>

#include "oms/benchlib/algorithms.hpp"
#include "oms/benchlib/instances.hpp"
#include "oms/graph/generators.hpp"

namespace oms::bench {
namespace {

TEST(InstanceRegistry, SuiteCoversAllPaperFamilies) {
  const auto suite = benchmark_suite(Scale::kSmall);
  std::set<std::string> families;
  for (const auto& instance : suite) {
    families.insert(instance.family);
  }
  // Table 1's type column: meshes, circuits, citations, web, social, roads,
  // artificial (+ misc).
  for (const char* family :
       {"Meshes", "Circuit", "Citations", "Web", "Social", "Roads", "Artificial"}) {
    EXPECT_TRUE(families.contains(family)) << family;
  }
}

TEST(InstanceRegistry, AllInstancesBuildValidGraphs) {
  for (const auto& instance : benchmark_suite(Scale::kSmall)) {
    const CsrGraph graph = instance.make();
    EXPECT_GT(graph.num_nodes(), 0u) << instance.name;
    EXPECT_GT(graph.num_edges(), 0u) << instance.name;
    graph.validate();
  }
}

TEST(InstanceRegistry, InstancesAreDeterministic) {
  const auto suite = benchmark_suite(Scale::kSmall);
  const CsrGraph a = suite.front().make();
  const CsrGraph b = suite.front().make();
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(InstanceRegistry, MediumScaleIsLarger) {
  const CsrGraph small = instance_by_name(Scale::kSmall, "social-ba").make();
  const CsrGraph medium = instance_by_name(Scale::kMedium, "social-ba").make();
  EXPECT_GT(medium.num_nodes(), 2 * small.num_nodes());
}

TEST(InstanceRegistry, ScalabilitySuiteIsSubsetOfSuite) {
  const auto scalability = scalability_suite(Scale::kSmall);
  ASSERT_EQ(scalability.size(), 3u); // social / mesh / web, like the paper
  std::set<std::string> names;
  for (const auto& instance : benchmark_suite(Scale::kSmall)) {
    names.insert(instance.name);
  }
  for (const auto& instance : scalability) {
    EXPECT_TRUE(names.contains(instance.name));
  }
}

TEST(AlgorithmRunner, EveryAlgorithmProducesValidBalancedResults) {
  const CsrGraph graph = gen::random_geometric(1500, 3);
  RunOptions options;
  options.repetitions = 1;
  options.topology = paper_topology(1); // k = 64
  for (const Algo algo : {Algo::kHashing, Algo::kLdg, Algo::kFennel, Algo::kOms,
                          Algo::kNhOms, Algo::kKaMinParLite, Algo::kIntMapLite}) {
    const RunMetrics metrics = run_algorithm(algo, graph, options);
    EXPECT_TRUE(metrics.balanced) << algo_name(algo);
    EXPECT_GT(metrics.mapping_cost, 0.0) << algo_name(algo);
    EXPECT_GE(metrics.time_s, 0.0) << algo_name(algo);
  }
}

TEST(AlgorithmRunner, RepetitionsAverageDeterministically) {
  const CsrGraph graph = gen::barabasi_albert(800, 3, 5);
  RunOptions options;
  options.repetitions = 3;
  options.k_override = 16;
  const RunMetrics a = run_algorithm(Algo::kFennel, graph, options);
  const RunMetrics b = run_algorithm(Algo::kFennel, graph, options);
  EXPECT_DOUBLE_EQ(a.edge_cut, b.edge_cut); // objectives are seed-deterministic
}

TEST(AlgorithmRunner, MappingCostOnlyWithTopology) {
  const CsrGraph graph = gen::grid_2d(20, 20);
  RunOptions options;
  options.repetitions = 1;
  options.k_override = 8;
  const RunMetrics metrics = run_algorithm(Algo::kNhOms, graph, options);
  EXPECT_EQ(metrics.mapping_cost, 0.0);
  EXPECT_GT(metrics.edge_cut, 0.0);
}

TEST(AlgorithmRunner, AlgoNamesAreUnique) {
  std::set<std::string> names;
  for (const Algo algo : {Algo::kHashing, Algo::kLdg, Algo::kFennel, Algo::kOms,
                          Algo::kNhOms, Algo::kKaMinParLite, Algo::kIntMapLite}) {
    EXPECT_TRUE(names.insert(algo_name(algo)).second);
  }
}

TEST(PaperTopology, MatchesConfiguration) {
  for (const std::int64_t r : {1LL, 2LL, 64LL, 128LL}) {
    const SystemHierarchy topo = paper_topology(r);
    EXPECT_EQ(topo.num_pes(), 64 * r);
    EXPECT_EQ(topo.num_levels(), 3u);
    EXPECT_EQ(topo.distances()[0], 1);
    EXPECT_EQ(topo.distances()[2], 100);
  }
}

} // namespace
} // namespace oms::bench
