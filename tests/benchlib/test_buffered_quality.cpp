/// \file test_buffered_quality.cpp
/// \brief Quality gate for the buffered core's inner engines over the
///        benchmark suite: the multilevel engine must (a) not lose to the
///        flat lp engine on edge cut for the vast majority of instances and
///        (b) improve the mean cut, at a bounded slowdown — the measured
///        claim behind `--buffered-engine=multilevel`. A separate case pins
///        the same dominance for the mapping objective J when a hierarchy is
///        configured.
#include <gtest/gtest.h>

#include <cmath>

#include "oms/benchlib/instances.hpp"
#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/mapping/hierarchy.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/util/timer.hpp"

namespace oms {
namespace {

constexpr BlockId kBlocks = 32;

[[nodiscard]] BufferedConfig engine_config(BufferedEngine engine,
                                           const SystemHierarchy* topo = nullptr) {
  BufferedConfig config;
  config.buffer_size = 2048;
  config.engine = engine;
  config.hierarchy = topo;
  return config;
}

TEST(BufferedQuality, MultilevelDominatesLpOnEdgeCut) {
  const auto suite = bench::benchmark_suite(bench::Scale::kSmall);
  int wins = 0;
  int losses = 0;
  double cut_ratio_sum = 0.0;
  double lp_seconds = 0.0;
  double ml_seconds = 0.0;
  for (const auto& spec : suite) {
    const CsrGraph graph = spec.make();
    Timer lp_timer;
    const BufferedResult lp = buffered_partition(
        graph, kBlocks, engine_config(BufferedEngine::kLp));
    lp_seconds += lp_timer.elapsed_s();
    Timer ml_timer;
    const BufferedResult ml = buffered_partition(
        graph, kBlocks, engine_config(BufferedEngine::kMultilevel));
    ml_seconds += ml_timer.elapsed_s();

    const Cost lp_cut = edge_cut(graph, lp.assignment);
    const Cost ml_cut = edge_cut(graph, ml.assignment);
    if (ml_cut <= lp_cut) {
      ++wins;
    } else {
      ++losses;
    }
    cut_ratio_sum += lp_cut > 0 ? static_cast<double>(ml_cut) /
                                      static_cast<double>(lp_cut)
                                : 1.0;
    std::printf("  %-24s lp=%lld ml=%lld (%.1f%%)\n", spec.name.c_str(),
                static_cast<long long>(lp_cut), static_cast<long long>(ml_cut),
                100.0 * static_cast<double>(ml_cut) /
                    static_cast<double>(lp_cut > 0 ? lp_cut : 1));
  }
  const double mean_ratio = cut_ratio_sum / static_cast<double>(suite.size());
  std::printf("  multilevel/lp mean cut ratio %.3f, wins %d/%zu, time %.2fx\n",
              mean_ratio, wins, suite.size(),
              lp_seconds > 0.0 ? ml_seconds / lp_seconds : 0.0);
  // The ISSUE-6 acceptance bar: no worse on >= 8 of the ~10 instances and a
  // strictly better mean cut.
  EXPECT_GE(wins, static_cast<int>(suite.size()) - 2)
      << "multilevel lost on " << losses << " instances";
  EXPECT_LT(mean_ratio, 1.0);
}

TEST(BufferedQuality, HierarchyAwareCommitImprovesJ) {
  // 4 cores x 4 processors x 2 nodes = 32 PEs; the paper's distance shape.
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");
  ASSERT_EQ(topo.num_pes(), kBlocks);
  const auto suite = bench::benchmark_suite(bench::Scale::kSmall);
  int blind_wins = 0; // J-aware lp beats J-blind lp
  int ml_wins = 0;    // J-aware multilevel no worse than J-aware lp
  double aware_ratio_sum = 0.0; // J(aware lp) / J(blind lp)
  double ml_ratio_sum = 0.0;    // J(aware ml) / J(aware lp)
  for (const auto& spec : suite) {
    const CsrGraph graph = spec.make();
    const BufferedResult blind = buffered_partition(
        graph, kBlocks, engine_config(BufferedEngine::kLp));
    const BufferedResult lp = buffered_partition(
        graph, kBlocks, engine_config(BufferedEngine::kLp, &topo));
    const BufferedResult ml = buffered_partition(
        graph, kBlocks, engine_config(BufferedEngine::kMultilevel, &topo));
    const Cost j_blind = mapping_cost(graph, topo, blind.assignment, 1);
    const Cost j_lp = mapping_cost(graph, topo, lp.assignment, 1);
    const Cost j_ml = mapping_cost(graph, topo, ml.assignment, 1);
    blind_wins += j_lp <= j_blind ? 1 : 0;
    ml_wins += j_ml <= j_lp ? 1 : 0;
    aware_ratio_sum += j_blind > 0 ? static_cast<double>(j_lp) /
                                         static_cast<double>(j_blind)
                                   : 1.0;
    ml_ratio_sum +=
        j_lp > 0 ? static_cast<double>(j_ml) / static_cast<double>(j_lp) : 1.0;
    std::printf("  %-24s J blind=%lld lp=%lld ml=%lld\n", spec.name.c_str(),
                static_cast<long long>(j_blind), static_cast<long long>(j_lp),
                static_cast<long long>(j_ml));
  }
  const auto size = static_cast<double>(suite.size());
  const double aware_mean = aware_ratio_sum / size;
  const double ml_mean = ml_ratio_sum / size;
  std::printf("  J-aware/blind mean %.3f (wins %d/%zu); ml/lp mean %.3f "
              "(wins %d/%zu)\n",
              aware_mean, blind_wins, suite.size(), ml_mean, ml_wins,
              suite.size());
  // The acceptance claim is about the mean: distance-aware commits improve J
  // in aggregate, and the multilevel engine extends the improvement. Win
  // floors are loose — on weakly structured instances the objectives are
  // near-ties either way.
  EXPECT_LT(aware_mean, 1.0);
  EXPECT_LT(ml_mean, 1.0);
  EXPECT_GE(blind_wins, static_cast<int>(suite.size()) / 2);
  EXPECT_GE(ml_wins, static_cast<int>(suite.size()) / 2);
}

} // namespace
} // namespace oms
