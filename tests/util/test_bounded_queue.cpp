/// \file test_bounded_queue.cpp
/// \brief The pipeline's bounded blocking queue: FIFO order, capacity
///        backpressure, close() semantics (drain-then-stop on the pop side,
///        immediate refusal on the push side), and a multi-producer/
///        multi-consumer stress run sized for the TSan CI leg.
#include "oms/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace oms {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.push(int{i}));
  }
  EXPECT_EQ(q.size(), 4u);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2)); // blocks: queue is full
    pushed.store(true);
  });
  // The producer cannot complete until this thread pops.
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueue, CloseDrainsBufferedElementsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(12)); // refused immediately
  int out = 0;
  ASSERT_TRUE(q.pop(out)); // buffered elements still drain
  EXPECT_EQ(out, 10);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(q.pop(out)); // closed and empty
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(1));
  std::thread blocked_producer([&] {
    int v = 2;
    EXPECT_FALSE(full.push(std::move(v))); // blocked on full, woken by close
  });
  BoundedQueue<int> empty(1);
  std::thread blocked_consumer([&] {
    int out = 0;
    EXPECT_FALSE(empty.pop(out)); // blocked on empty, woken by close
  });
  full.close();
  empty.close();
  blocked_producer.join();
  blocked_consumer.join();
}

TEST(BoundedQueue, MovesValuesWithoutCopy) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

/// MPMC stress: every pushed value is popped exactly once, across thread
/// counts exceeding the queue capacity, and a late close() releases everyone.
/// This is the test the TSan CI leg exists for.
TEST(BoundedQueueStress, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> q(8);

  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out = 0;
      while (q.pop(out)) {
        popped_sum.fetch_add(out, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<std::size_t>(p)].join();
  }
  q.close(); // all values pushed; consumers drain and exit
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }

  constexpr int kTotal = kProducers * kPerProducer;
  constexpr long long kExpectedSum =
      static_cast<long long>(kTotal) * (kTotal - 1) / 2;
  EXPECT_EQ(popped_count.load(), kTotal);
  EXPECT_EQ(popped_sum.load(), kExpectedSum);
}

} // namespace
} // namespace oms
