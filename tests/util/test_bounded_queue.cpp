/// \file test_bounded_queue.cpp
/// \brief The pipeline's bounded blocking queue: FIFO order, capacity
///        backpressure, close() semantics (drain-then-stop on the pop side,
///        immediate refusal on the push side), and a multi-producer/
///        multi-consumer stress run sized for the TSan CI leg.
#include "oms/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "oms/util/io_error.hpp"

namespace oms {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.push(int{i}));
  }
  EXPECT_EQ(q.size(), 4u);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2)); // blocks: queue is full
    pushed.store(true);
  });
  // The producer cannot complete until this thread pops.
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueue, CloseDrainsBufferedElementsThenStops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(12)); // refused immediately
  int out = 0;
  ASSERT_TRUE(q.pop(out)); // buffered elements still drain
  EXPECT_EQ(out, 10);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(q.pop(out)); // closed and empty
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(1));
  std::thread blocked_producer([&] {
    int v = 2;
    EXPECT_FALSE(full.push(std::move(v))); // blocked on full, woken by close
  });
  BoundedQueue<int> empty(1);
  std::thread blocked_consumer([&] {
    int out = 0;
    EXPECT_FALSE(empty.pop(out)); // blocked on empty, woken by close
  });
  full.close();
  empty.close();
  blocked_producer.join();
  blocked_consumer.join();
}

TEST(BoundedQueue, MovesValuesWithoutCopy) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

/// MPMC stress: every pushed value is popped exactly once, across thread
/// counts exceeding the queue capacity, and a late close() releases everyone.
/// This is the test the TSan CI leg exists for.
TEST(BoundedQueueStress, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> q(8);

  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out = 0;
      while (q.pop(out)) {
        popped_sum.fetch_add(out, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<std::size_t>(p)].join();
  }
  q.close(); // all values pushed; consumers drain and exit
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }

  constexpr int kTotal = kProducers * kPerProducer;
  constexpr long long kExpectedSum =
      static_cast<long long>(kTotal) * (kTotal - 1) / 2;
  EXPECT_EQ(popped_count.load(), kTotal);
  EXPECT_EQ(popped_sum.load(), kExpectedSum);
}

// --- fault tolerance: watchdog and error-path shutdown ----------------------

TEST(BoundedQueue, WatchdogThrowsOnDeadProducer) {
  // An empty queue whose producer never shows up: the watchdog must convert
  // the would-be-forever wait into IoError.
  BoundedQueue<int> q(2);
  q.set_watchdog(std::chrono::milliseconds(50));
  int out = 0;
  EXPECT_THROW((void)q.pop(out), IoError);
}

TEST(BoundedQueue, WatchdogThrowsOnDeadConsumer) {
  BoundedQueue<int> q(1);
  q.set_watchdog(std::chrono::milliseconds(50));
  ASSERT_TRUE(q.push(1));
  EXPECT_THROW((void)q.push(2), IoError); // full, nobody will ever pop
}

TEST(BoundedQueue, WatchdogTimeoutClosesTheQueueForEveryone) {
  // After a watchdog trip the queue is closed and drained, so peers that
  // arrive later observe a clean shutdown instead of a second hang.
  BoundedQueue<int> q(1);
  q.set_watchdog(std::chrono::milliseconds(50));
  int out = 0;
  EXPECT_THROW((void)q.pop(out), IoError);
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueue, AbortDiscardsBufferedElementsAndUnblocks) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::thread blocked_producer([&] {
    int v = 8;
    EXPECT_FALSE(q.push(std::move(v))); // blocked on full, woken by abort
  });
  q.abort();
  blocked_producer.join();
  int out = 0;
  // Unlike close(), abort() throws the buffered 7 away: failed runs must not
  // hand stale batches to surviving workers.
  EXPECT_FALSE(q.pop(out));
}

/// A consumer dying mid-batch (returns without closing anything) must never
/// wedge the queue: the surviving consumers drain every element. TSan runs
/// this to prove the death path is race-free.
TEST(BoundedQueueStress, ConsumerDyingMidBatchNeverWedgesTheQueue) {
  constexpr int kProducers = 2;
  constexpr int kSurvivors = 2;
  constexpr int kPerProducer = 4000;
  BoundedQueue<int> q(8);
  // Generous backstop: the test must pass because the survivors drain, not
  // because the watchdog cleans up.
  q.set_watchdog(std::chrono::milliseconds(30000));

  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(int{i}));
      }
    });
  }
  threads.emplace_back([&] { // the victim: dies after 10 pops
    int out = 0;
    for (int i = 0; i < 10 && q.pop(out); ++i) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int c = 0; c < kSurvivors; ++c) {
    threads.emplace_back([&] {
      int out = 0;
      while (q.pop(out)) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<std::size_t>(p)].join();
  }
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
}

/// When the *only* consumer dies, the producer has no one left to make room:
/// the watchdog must fail its push with IoError instead of blocking forever.
TEST(BoundedQueueStress, SoleConsumerDeathTripsTheProducerWatchdog) {
  BoundedQueue<int> q(2);
  q.set_watchdog(std::chrono::milliseconds(100));
  std::atomic<bool> producer_threw{false};
  std::thread producer([&] {
    try {
      for (int i = 0; i < 1000000; ++i) {
        if (!q.push(int{i})) {
          return; // closed — acceptable, but the watchdog should fire first
        }
      }
    } catch (const IoError&) {
      producer_threw.store(true);
    }
  });
  int out = 0;
  for (int i = 0; i < 3 && q.pop(out); ++i) {
  }
  // ... and then this "consumer" simply stops popping.
  producer.join();
  EXPECT_TRUE(producer_threw.load());
}

} // namespace
} // namespace oms
