/// \file test_fastdiv.cpp
/// \brief The magic-number reductions must be *exact* — the descent swaps
///        them in for `/` and `%` on the assumption that no input ever
///        rounds differently. Sweep the divisor/dividend shapes the tree
///        produces plus adversarial corners near the magic's rounding.
#include "oms/util/fastdiv.hpp"

#include <gtest/gtest.h>

#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(FastDiv32, ExactForSmallDivisorsExhaustively) {
  for (std::uint32_t d = 1; d <= 64; ++d) {
    const FastDiv32 div = FastDiv32::of(d);
    for (std::uint32_t n = 0; n < 3000; ++n) {
      ASSERT_EQ(div.divide(n), n / d) << "n=" << n << " d=" << d;
    }
    // The paper's trees only divide leaf offsets, but the magic must hold
    // over the whole 32-bit dividend range.
    for (const std::uint32_t n :
         {0x7fffffffU, 0x80000000U, 0xfffffffeU, 0xffffffffU}) {
      ASSERT_EQ(div.divide(n), n / d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(FastDiv32, ExactOnRandomPairs) {
  Rng rng(oms::testing::test_seed());
  for (int i = 0; i < 200000; ++i) {
    const auto d = static_cast<std::uint32_t>(1 + rng.next_below(1u << 20));
    const auto n = static_cast<std::uint32_t>(rng.next_below(1ull << 32));
    const FastDiv32 div = FastDiv32::of(d);
    ASSERT_EQ(div.divide(n), n / d) << "n=" << n << " d=" << d;
  }
}

TEST(FastMod64, ExactForSmallDivisorsOnWideDividends) {
  Rng rng(oms::testing::test_seed() + 1);
  for (std::uint32_t d = 1; d <= 96; ++d) {
    const FastMod64 mod = FastMod64::of(d);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t n = rng();
      ASSERT_EQ(mod.mod(n), n % d) << "n=" << n << " d=" << d;
    }
    for (const std::uint64_t n : {std::uint64_t{0}, std::uint64_t{1},
                                  ~std::uint64_t{0}, ~std::uint64_t{0} - 1}) {
      ASSERT_EQ(mod.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(FastMod64, ExactOnRandomDivisors) {
  Rng rng(oms::testing::test_seed() + 2);
  for (int i = 0; i < 100000; ++i) {
    const auto d = static_cast<std::uint32_t>(
        1 + rng.next_below((1ull << 32) - 1));
    const std::uint64_t n = rng();
    const FastMod64 mod = FastMod64::of(d);
    ASSERT_EQ(mod.mod(n), n % d) << "n=" << n << " d=" << d;
  }
}

} // namespace
} // namespace oms
