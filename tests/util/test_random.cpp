#include "oms/util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace oms {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(SplitMix64, MixesLowBits) {
  // Consecutive inputs must land in different mod-k buckets most of the time
  // (this is what the Hashing partitioner relies on).
  int same_bucket = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (splitmix64(x) % 64 == splitmix64(x + 1) % 64) {
      ++same_bucket;
    }
  }
  EXPECT_LT(same_bucket, 60); // ~1/64 expected, allow wide slack
}

TEST(HashCombine, DependsOnBothArguments) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-2.5, 4.0);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.0);
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatchesP) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.next_bool(0.3) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ShuffleProducesPermutation) {
  Rng rng(13);
  std::vector<int> values(257);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int>(i));
  }
  // And it actually moved something.
  bool moved = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    moved = moved || values[i] != static_cast<int>(i);
  }
  EXPECT_TRUE(moved);
}

} // namespace
} // namespace oms
