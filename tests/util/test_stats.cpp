#include "oms/util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace oms {
namespace {

TEST(Means, ArithmeticBasics) {
  const std::array<double, 3> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(v), 3.0);
  EXPECT_DOUBLE_EQ(arithmetic_mean({}), 0.0);
}

TEST(Means, GeometricBasics) {
  const std::array<double, 2> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(v), 2.0);
  const std::array<double, 3> w{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(geometric_mean(w), 2.0);
}

TEST(Means, GeometricIsScaleInvariantPerInstance) {
  // The paper uses geomean so every instance has the same influence:
  // doubling one value multiplies the mean by 2^(1/n) regardless of its size.
  const std::array<double, 2> small{1.0, 100.0};
  const std::array<double, 2> doubled_small{2.0, 100.0};
  const std::array<double, 2> doubled_large{1.0, 200.0};
  EXPECT_NEAR(geometric_mean(doubled_small) / geometric_mean(small),
              geometric_mean(doubled_large) / geometric_mean(small), 1e-12);
}

TEST(Means, ShiftedGeometricToleratesZero) {
  const std::array<double, 2> v{0.0, 3.0};
  const double g = shifted_geometric_mean(v, 1.0);
  EXPECT_NEAR(g, std::sqrt(1.0 * 4.0) - 1.0, 1e-12);
}

TEST(Improvement, MatchesPaperFormula) {
  // improvement of A over B = (sigma_B / sigma_A - 1) * 100%.
  EXPECT_DOUBLE_EQ(improvement_percent(200.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(50.0, 100.0), -50.0);
}

TEST(Speedup, Basics) {
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(speedup(1.0, 4.0), 0.25);
}

TEST(PerformanceProfile, BestAlgorithmStartsAtFullFraction) {
  PerformanceProfile profile;
  profile.add("g1", "A", 10.0);
  profile.add("g1", "B", 20.0);
  profile.add("g2", "A", 10.0);
  profile.add("g2", "B", 10.0);
  EXPECT_DOUBLE_EQ(profile.fraction_within("A", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.fraction_within("B", 1.0), 0.5);
  EXPECT_DOUBLE_EQ(profile.fraction_within("B", 2.0), 1.0);
}

TEST(PerformanceProfile, MonotoneInTau) {
  PerformanceProfile profile;
  profile.add("g1", "A", 1.0);
  profile.add("g1", "B", 3.0);
  profile.add("g2", "A", 5.0);
  profile.add("g2", "B", 1.0);
  double prev = 0.0;
  for (const double tau : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    const double f = profile.fraction_within("B", tau);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(PerformanceProfile, MissingResultCountsAgainstAlgorithm) {
  PerformanceProfile profile;
  profile.add("g1", "A", 1.0);
  profile.add("g2", "A", 1.0);
  profile.add("g2", "B", 1.0);
  EXPECT_DOUBLE_EQ(profile.fraction_within("B", 100.0), 0.5);
}

TEST(PerformanceProfile, ZeroBestHandled) {
  PerformanceProfile profile;
  profile.add("g1", "A", 0.0);
  profile.add("g1", "B", 5.0);
  EXPECT_DOUBLE_EQ(profile.fraction_within("A", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.fraction_within("B", 1000.0), 0.0);
}

TEST(PerformanceProfile, TableShape) {
  PerformanceProfile profile;
  profile.add("g1", "A", 1.0);
  profile.add("g1", "B", 2.0);
  const std::array<double, 3> taus{1.0, 2.0, 4.0};
  const auto rows = profile.table(taus);
  ASSERT_EQ(rows.size(), 3u);
  ASSERT_EQ(rows[0].size(), 3u); // tau + 2 algorithms
  EXPECT_DOUBLE_EQ(rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(rows[2][2], 1.0); // B within tau=4
}

TEST(RunningStats, TracksMinMeanMax) {
  RunningStats s;
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

} // namespace
} // namespace oms
