#include "oms/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace oms {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "12345"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(TablePrinter, CellFormatting) {
  EXPECT_EQ(TablePrinter::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::cell(std::int64_t{-42}), "-42");
  EXPECT_EQ(TablePrinter::cell(std::uint64_t{7}), "7");
  EXPECT_EQ(TablePrinter::percent_cell(12.345, 1), "+12.3%");
  EXPECT_EQ(TablePrinter::percent_cell(-3.0, 1), "-3.0%");
}

TEST(TablePrinter, CountsRowsAndColumns) {
  TablePrinter table({"a", "b", "c"});
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.num_rows(), 0u);
  table.add_row({"1", "2", "3"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterDeath, RejectsWrongRowWidth) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "row width");
}

} // namespace
} // namespace oms
