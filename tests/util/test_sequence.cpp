#include "oms/util/sequence.hpp"

#include <gtest/gtest.h>

namespace oms {
namespace {

TEST(Sequence, ParsesPaperHierarchy) {
  const auto s = parse_sequence("4:16:2");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 4);
  EXPECT_EQ(s[1], 16);
  EXPECT_EQ(s[2], 2);
}

TEST(Sequence, ParsesDistances) {
  const auto d = parse_sequence("1:10:100");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[2], 100);
}

TEST(Sequence, SingleComponent) {
  const auto s = parse_sequence("8");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 8);
}

TEST(Sequence, RoundTripsThroughFormat) {
  for (const char* text : {"2", "4:16:2", "3:3:3:3", "1:10:100"}) {
    EXPECT_EQ(format_sequence(parse_sequence(text)), text);
  }
}

TEST(Sequence, ProductMatchesK) {
  EXPECT_EQ(sequence_product(parse_sequence("4:16:2")), 128);
  EXPECT_EQ(sequence_product(parse_sequence("4:4:4:4")), 256);
  EXPECT_EQ(sequence_product(parse_sequence("7")), 7);
}

using SequenceDeath = ::testing::Test;

TEST(SequenceDeath, RejectsEmptyString) {
  EXPECT_DEATH((void)parse_sequence(""), "empty");
}

TEST(SequenceDeath, RejectsEmptyComponent) {
  EXPECT_DEATH((void)parse_sequence("4::2"), "empty component");
}

TEST(SequenceDeath, RejectsNonInteger) {
  EXPECT_DEATH((void)parse_sequence("4:x:2"), "not an integer");
}

TEST(SequenceDeath, RejectsZero) {
  EXPECT_DEATH((void)parse_sequence("4:0:2"), ">= 1");
}

} // namespace
} // namespace oms
