/// \file test_fault_injection.cpp
/// \brief The deterministic fault-injection plan: spec parsing, 1-based
///        trigger/period firing semantics, seeded-plan reproducibility, and
///        the arm/disarm lifecycle of the process-global hook.
#include "oms/util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "oms/util/io_error.hpp"

namespace oms {
namespace {

/// Every test leaves the process disarmed — the global hook must never leak
/// into unrelated suites.
class FaultInjectionTest : public ::testing::Test {
protected:
  void TearDown() override { FaultPlan::disarm(); }
};

TEST_F(FaultInjectionTest, DisarmedHookNeverFires) {
  FaultPlan::disarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault_fires(FaultSite::kReadError));
  }
}

TEST_F(FaultInjectionTest, SiteNamesRoundTripThroughParse) {
  // Each named site parses back to a plan that fires that site (and no
  // other) — the name table and the enum must stay aligned.
  for (std::size_t s = 0; s < static_cast<std::size_t>(FaultSite::kCount); ++s) {
    const auto site = static_cast<FaultSite>(s);
    FaultPlan plan = FaultPlan::parse(std::string(fault_site_name(site)) + "@1");
    for (std::size_t o = 0; o < static_cast<std::size_t>(FaultSite::kCount); ++o) {
      const auto other = static_cast<FaultSite>(o);
      EXPECT_EQ(plan.should_fire(other), other == site)
          << fault_site_name(site) << " vs " << fault_site_name(other);
    }
  }
}

TEST_F(FaultInjectionTest, SingleTriggerFiresExactlyOnce) {
  FaultPlan plan = FaultPlan::parse("read.transient@3");
  std::vector<bool> fired;
  for (int hit = 1; hit <= 8; ++hit) {
    fired.push_back(plan.should_fire(FaultSite::kReadTransient));
  }
  const std::vector<bool> expected{false, false, true,  false,
                                   false, false, false, false};
  EXPECT_EQ(fired, expected);
}

TEST_F(FaultInjectionTest, PeriodicTriggerFiresEveryPeriod) {
  FaultPlan plan = FaultPlan::parse("queue.delay@2+3");
  std::vector<int> firing_hits;
  for (int hit = 1; hit <= 12; ++hit) {
    if (plan.should_fire(FaultSite::kQueueDelay)) {
      firing_hits.push_back(hit);
    }
  }
  EXPECT_EQ(firing_hits, (std::vector<int>{2, 5, 8, 11}));
}

TEST_F(FaultInjectionTest, CommaSeparatedSpecArmsSeveralSites) {
  FaultPlan plan = FaultPlan::parse("read.error@1,consume.throw@2");
  EXPECT_TRUE(plan.should_fire(FaultSite::kReadError));
  EXPECT_FALSE(plan.should_fire(FaultSite::kConsumeThrow));
  EXPECT_TRUE(plan.should_fire(FaultSite::kConsumeThrow));
}

TEST_F(FaultInjectionTest, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse("no.such.site@1"), IoError);
  EXPECT_THROW((void)FaultPlan::parse("read.error"), IoError);
  EXPECT_THROW((void)FaultPlan::parse("read.error@"), IoError);
  EXPECT_THROW((void)FaultPlan::parse("read.error@0"), IoError);
  EXPECT_THROW((void)FaultPlan::parse("read.error@x"), IoError);
  EXPECT_THROW((void)FaultPlan::parse("read.error@1+0"), IoError);
}

TEST_F(FaultInjectionTest, CopyResetsTheHitCounters) {
  FaultPlan plan = FaultPlan::parse("read.short@1");
  EXPECT_TRUE(plan.should_fire(FaultSite::kReadShort)); // counter consumed
  FaultPlan copy = plan;
  // The copy carries the schedule but starts counting from zero again.
  EXPECT_TRUE(copy.should_fire(FaultSite::kReadShort));
}

TEST_F(FaultInjectionTest, SeededPlansAreReproducibleAndVaried) {
  std::set<std::string> shapes;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    FaultPlan a = FaultPlan::seeded(seed);
    FaultPlan b = FaultPlan::seeded(seed);
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
    EXPECT_NE(a.describe(), "(no faults)") << "seed " << seed;
    // Sweeps have no resume harness, so seeded plans must never schedule the
    // post-checkpoint crash site.
    EXPECT_EQ(a.describe().find("checkpoint.die"), std::string::npos);
    shapes.insert(a.describe());
  }
  EXPECT_GT(shapes.size(), 8u) << "seeded plans barely vary";
}

TEST_F(FaultInjectionTest, ArmInstallsACountingCopy) {
  FaultPlan::arm(FaultPlan::parse("fill.delay@2"));
  EXPECT_FALSE(fault_fires(FaultSite::kFillDelay));
  EXPECT_TRUE(fault_fires(FaultSite::kFillDelay));
  EXPECT_FALSE(fault_fires(FaultSite::kFillDelay)); // once only
  FaultPlan::disarm();
  EXPECT_FALSE(fault_fires(FaultSite::kFillDelay));
}

TEST_F(FaultInjectionTest, RearmingResetsTheCounters) {
  FaultPlan::arm(FaultPlan::parse("read.corrupt@1"));
  EXPECT_TRUE(fault_fires(FaultSite::kReadCorrupt));
  FaultPlan::arm(FaultPlan::parse("read.corrupt@1"));
  EXPECT_TRUE(fault_fires(FaultSite::kReadCorrupt));
}

TEST_F(FaultInjectionTest, ArmFromEnvPrefersExplicitSpec) {
  ::setenv("OMS_FAULTS", "read.error@2", 1);
  ::setenv("OMS_FAULT_SEED", "7", 1);
  EXPECT_TRUE(FaultPlan::arm_from_env());
  EXPECT_FALSE(fault_fires(FaultSite::kReadError));
  EXPECT_TRUE(fault_fires(FaultSite::kReadError));
  ::unsetenv("OMS_FAULTS");
  ::unsetenv("OMS_FAULT_SEED");
}

TEST_F(FaultInjectionTest, ArmFromEnvWithNothingSetArmsNothing) {
  ::unsetenv("OMS_FAULTS");
  ::unsetenv("OMS_FAULT_SEED");
  EXPECT_FALSE(FaultPlan::arm_from_env());
  EXPECT_EQ(detail::g_armed_fault_plan.load(), nullptr);
}

TEST_F(FaultInjectionTest, ArmFromEnvSeedMatchesSeededPlan) {
  ::unsetenv("OMS_FAULTS");
  ::setenv("OMS_FAULT_SEED", "42", 1);
  EXPECT_TRUE(FaultPlan::arm_from_env());
  ::unsetenv("OMS_FAULT_SEED");
  // The armed plan is exactly FaultPlan::seeded(42): the site seeded to fire
  // first fires at the same hit through the global hook.
  FaultPlan reference = FaultPlan::seeded(42);
  FaultPlan armed_copy = FaultPlan::seeded(42); // same schedule, own counters
  EXPECT_EQ(reference.describe(), armed_copy.describe());
}

} // namespace
} // namespace oms
