#include "oms/multilevel/label_propagation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(LpClustering, MergesCliques) {
  const CsrGraph g = testing::clique_chain(4, 6);
  LabelPropagationConfig config;
  const auto cluster = lp_clustering(g, /*max_cluster_weight=*/6, config);
  // Each clique collapses to one cluster (weight cap 6 = clique size).
  for (NodeId c = 0; c < 4; ++c) {
    for (NodeId u = 1; u < 6; ++u) {
      EXPECT_EQ(cluster[c * 6 + u], cluster[c * 6]);
    }
  }
  const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  EXPECT_EQ(num_clusters, 4u);
}

TEST(LpClustering, RespectsWeightCap) {
  const CsrGraph g = gen::grid_2d(30, 30);
  LabelPropagationConfig config;
  const NodeWeight cap = 10;
  const auto cluster = lp_clustering(g, cap, config);
  const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  std::vector<NodeWeight> weight(num_clusters, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    weight[cluster[u]] += g.node_weight(u);
  }
  for (const NodeWeight w : weight) {
    EXPECT_LE(w, cap);
  }
}

TEST(LpClustering, IdsAreDense) {
  const CsrGraph g = gen::barabasi_albert(500, 3, 4);
  LabelPropagationConfig config;
  const auto cluster = lp_clustering(g, 20, config);
  const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  std::vector<bool> used(num_clusters, false);
  for (const NodeId c : cluster) {
    used[c] = true;
  }
  EXPECT_TRUE(std::all_of(used.begin(), used.end(), [](bool b) { return b; }));
}

TEST(LpRefinement, NeverWorsensTheCut) {
  const CsrGraph g = gen::random_geometric(2000, 6);
  // Start from a deliberately bad partition: round-robin.
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = static_cast<BlockId>(u % 8);
  }
  const Cost before = edge_cut(g, partition);
  LabelPropagationConfig config;
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 8, 0.03);
  lp_refinement(g, partition, 8, lmax, config);
  const Cost after = edge_cut(g, partition);
  EXPECT_LE(after, before);
  EXPECT_LT(after, before / 2); // and it should actually help a lot
  EXPECT_TRUE(is_balanced(g, partition, 8, 0.03));
}

TEST(LpRefinement, FixedPointOnOptimalBisection) {
  const CsrGraph g = testing::two_cliques_bridge(10);
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = u < 10 ? 0 : 1;
  }
  LabelPropagationConfig config;
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 2, 0.03);
  const std::size_t moved = lp_refinement(g, partition, 2, lmax, config);
  EXPECT_EQ(moved, 0u);
  EXPECT_EQ(edge_cut(g, partition), 1);
}

TEST(LpRefinement, ZeroGainTiebreakComparesPostMoveWeights) {
  // Node c is equally connected to its own block {a, c} and to {d}. Moving it
  // would leave both blocks at weight 2 — no balance gain either — so the
  // symmetric tiebreak must keep it put. The old code compared the raw
  // pre-move weights (1 < 2) and churned c across for nothing.
  GraphBuilder builder(3);
  builder.add_edge(1, 0); // c - a
  builder.add_edge(1, 2); // c - d
  const CsrGraph g = std::move(builder).build();
  std::vector<BlockId> partition = {0, 0, 1}; // a, c | d
  const std::vector<BlockId> before = partition;
  LabelPropagationConfig config;
  const std::size_t moved = lp_refinement(g, partition, 2, /*max_block_weight=*/2, config);
  EXPECT_EQ(moved, 0u);
  EXPECT_EQ(partition, before);

  // With an extra anchor in block 0 the move is a genuine balance win
  // (post-move 2 < post-stay 3) and must happen.
  GraphBuilder heavier(4);
  heavier.add_edge(2, 0);  // c - a
  heavier.add_edge(2, 3);  // c - d
  heavier.add_edge(0, 1);  // a - b keeps a anchored afterwards
  const CsrGraph g2 = std::move(heavier).build();
  std::vector<BlockId> partition2 = {0, 0, 0, 1}; // a, b, c | d
  lp_refinement(g2, partition2, 2, /*max_block_weight=*/3, config);
  EXPECT_EQ(partition2[2], 1) << "zero-gain move towards the lighter block";
  EXPECT_EQ(edge_cut(g2, partition2), 1);
}

TEST(Rebalance, EnforcesTheConstraint) {
  const CsrGraph g = gen::barabasi_albert(1000, 3, 8);
  // Everything in block 0: grossly unbalanced.
  std::vector<BlockId> partition(g.num_nodes(), 0);
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 4, 0.03);
  rebalance(g, partition, 4, lmax);
  EXPECT_TRUE(is_balanced(g, partition, 4, 0.03));
}

TEST(Rebalance, NoOpWhenAlreadyBalanced) {
  const CsrGraph g = testing::path_graph(16);
  std::vector<BlockId> partition(16);
  for (NodeId u = 0; u < 16; ++u) {
    partition[u] = static_cast<BlockId>(u / 4);
  }
  const std::vector<BlockId> before = partition;
  rebalance(g, partition, 4, max_block_weight(16, 4, 0.03));
  EXPECT_EQ(partition, before);
}

} // namespace
} // namespace oms
