#include "oms/multilevel/label_propagation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/partition/partition_config.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(LpClustering, MergesCliques) {
  const CsrGraph g = testing::clique_chain(4, 6);
  LabelPropagationConfig config;
  const auto cluster = lp_clustering(g, /*max_cluster_weight=*/6, config);
  // Each clique collapses to one cluster (weight cap 6 = clique size).
  for (NodeId c = 0; c < 4; ++c) {
    for (NodeId u = 1; u < 6; ++u) {
      EXPECT_EQ(cluster[c * 6 + u], cluster[c * 6]);
    }
  }
  const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  EXPECT_EQ(num_clusters, 4u);
}

TEST(LpClustering, RespectsWeightCap) {
  const CsrGraph g = gen::grid_2d(30, 30);
  LabelPropagationConfig config;
  const NodeWeight cap = 10;
  const auto cluster = lp_clustering(g, cap, config);
  const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  std::vector<NodeWeight> weight(num_clusters, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    weight[cluster[u]] += g.node_weight(u);
  }
  for (const NodeWeight w : weight) {
    EXPECT_LE(w, cap);
  }
}

TEST(LpClustering, IdsAreDense) {
  const CsrGraph g = gen::barabasi_albert(500, 3, 4);
  LabelPropagationConfig config;
  const auto cluster = lp_clustering(g, 20, config);
  const NodeId num_clusters = *std::max_element(cluster.begin(), cluster.end()) + 1;
  std::vector<bool> used(num_clusters, false);
  for (const NodeId c : cluster) {
    used[c] = true;
  }
  EXPECT_TRUE(std::all_of(used.begin(), used.end(), [](bool b) { return b; }));
}

TEST(LpRefinement, NeverWorsensTheCut) {
  const CsrGraph g = gen::random_geometric(2000, 6);
  // Start from a deliberately bad partition: round-robin.
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = static_cast<BlockId>(u % 8);
  }
  const Cost before = edge_cut(g, partition);
  LabelPropagationConfig config;
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 8, 0.03);
  lp_refinement(g, partition, 8, lmax, config);
  const Cost after = edge_cut(g, partition);
  EXPECT_LE(after, before);
  EXPECT_LT(after, before / 2); // and it should actually help a lot
  EXPECT_TRUE(is_balanced(g, partition, 8, 0.03));
}

TEST(LpRefinement, FixedPointOnOptimalBisection) {
  const CsrGraph g = testing::two_cliques_bridge(10);
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = u < 10 ? 0 : 1;
  }
  LabelPropagationConfig config;
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 2, 0.03);
  const std::size_t moved = lp_refinement(g, partition, 2, lmax, config);
  EXPECT_EQ(moved, 0u);
  EXPECT_EQ(edge_cut(g, partition), 1);
}

TEST(Rebalance, EnforcesTheConstraint) {
  const CsrGraph g = gen::barabasi_albert(1000, 3, 8);
  // Everything in block 0: grossly unbalanced.
  std::vector<BlockId> partition(g.num_nodes(), 0);
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 4, 0.03);
  rebalance(g, partition, 4, lmax);
  EXPECT_TRUE(is_balanced(g, partition, 4, 0.03));
}

TEST(Rebalance, NoOpWhenAlreadyBalanced) {
  const CsrGraph g = testing::path_graph(16);
  std::vector<BlockId> partition(16);
  for (NodeId u = 0; u < 16; ++u) {
    partition[u] = static_cast<BlockId>(u / 4);
  }
  const std::vector<BlockId> before = partition;
  rebalance(g, partition, 4, max_block_weight(16, 4, 0.03));
  EXPECT_EQ(partition, before);
}

} // namespace
} // namespace oms
