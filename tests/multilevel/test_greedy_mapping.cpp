#include "oms/multilevel/greedy_mapping.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/partition/metrics.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

bool is_permutation(const std::vector<BlockId>& perm) {
  std::vector<BlockId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<BlockId>(i)) {
      return false;
    }
  }
  return true;
}

TEST(GreedyMapping, ProducesAPermutation) {
  const CsrGraph g = gen::barabasi_albert(800, 4, 3);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = static_cast<BlockId>(u % 16);
  }
  const BlockGraph bg = BlockGraph::build(g, partition, 16);
  const auto perm = greedy_block_to_pe(bg, topo);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(GreedyMapping, PlacesCommunicatingBlocksClose) {
  // Chain of 4 cliques with bridges 0-1, 1-2, 2-3 on a 2x2 hierarchy: greedy
  // must put at least one bridged pair inside the same top-level module,
  // beating the worst-case placement.
  const CsrGraph g = testing::clique_chain(4, 6);
  const SystemHierarchy topo = SystemHierarchy::parse("2:2", "1:100");
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = static_cast<BlockId>(u / 6);
  }
  // Worst case: neighbors in the chain always cross the expensive level.
  std::vector<BlockId> worst = partition;
  const BlockId scatter[4] = {0, 2, 1, 3};
  for (auto& b : worst) {
    b = scatter[b];
  }
  std::vector<BlockId> greedy = partition;
  apply_greedy_mapping(g, greedy, topo);
  EXPECT_LT(mapping_cost(g, topo, greedy), mapping_cost(g, topo, worst));
}

TEST(GreedyMapping, ImprovesIdentityOnAverage) {
  // Over a handful of random partitions, greedy construction should beat the
  // identity mapping in total (it may tie on symmetric cases).
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");
  Cost identity_total = 0;
  Cost greedy_total = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const CsrGraph g = gen::random_geometric(2000, seed);
    std::vector<BlockId> partition(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      partition[u] =
          static_cast<BlockId>((u * 2654435761u) % static_cast<NodeId>(32));
    }
    identity_total += mapping_cost(g, topo, partition);
    std::vector<BlockId> greedy = partition;
    apply_greedy_mapping(g, greedy, topo);
    greedy_total += mapping_cost(g, topo, greedy);
  }
  EXPECT_LE(greedy_total, identity_total);
}

TEST(GreedyMapping, PreservesBlockContents) {
  const CsrGraph g = gen::grid_2d(20, 20);
  const SystemHierarchy topo = SystemHierarchy::parse("2:4", "1:10");
  std::vector<BlockId> partition(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    partition[u] = static_cast<BlockId>(u % 8);
  }
  auto before = block_weights_of(g, partition, 8);
  std::sort(before.begin(), before.end());
  apply_greedy_mapping(g, partition, topo);
  auto after = block_weights_of(g, partition, 8);
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(GreedyMapping, HandlesIsolatedBlocks) {
  // Blocks with no communication at all must still receive distinct PEs.
  const CsrGraph g = testing::path_graph(8); // blocks 4..7 will be isolated
  const SystemHierarchy topo = SystemHierarchy::parse("8", "5");
  std::vector<BlockId> partition{0, 0, 1, 1, 2, 3, 4, 5};
  partition.resize(8);
  const BlockGraph bg = BlockGraph::build(g, partition, 8);
  const auto perm = greedy_block_to_pe(bg, topo);
  EXPECT_TRUE(is_permutation(perm));
}

} // namespace
} // namespace oms
