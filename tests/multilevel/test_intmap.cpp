#include "oms/multilevel/recursive_multisection.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/multilevel/block_swap.hpp"
#include "oms/partition/metrics.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(BlockGraph, AggregatesCommunicationVolumes) {
  const CsrGraph g = testing::two_cliques_bridge(4);
  // Blocks: clique A -> 0, clique B -> 1.
  std::vector<BlockId> partition(8);
  for (NodeId u = 0; u < 8; ++u) {
    partition[u] = u < 4 ? 0 : 1;
  }
  const BlockGraph bg = BlockGraph::build(g, partition, 2);
  ASSERT_EQ(bg.adjacency[0].size(), 1u);
  EXPECT_EQ(bg.adjacency[0][0].first, 1);
  EXPECT_EQ(bg.adjacency[0][0].second, 1); // single bridge edge
}

TEST(BlockSwap, FixesAnAdversarialPermutation) {
  // Clique chain mapped so that adjacent cliques sit maximally far apart;
  // swapping must recover a hierarchy-friendly layout.
  const CsrGraph g = testing::clique_chain(4, 8);
  const SystemHierarchy topo = SystemHierarchy::parse("2:2", "1:100");
  // Adversarial: cliques 0,1 -> PEs 0,2 (different top modules), 2,3 -> 1,3.
  std::vector<BlockId> mapping(g.num_nodes());
  const BlockId adversarial[4] = {0, 2, 1, 3};
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    mapping[u] = adversarial[u / 8];
  }
  const Cost before = mapping_cost(g, topo, mapping);
  BlockSwapConfig config;
  const std::size_t swaps = swap_refine_mapping(g, topo, mapping, config);
  const Cost after = mapping_cost(g, topo, mapping);
  EXPECT_GT(swaps, 0u);
  EXPECT_LT(after, before);
}

TEST(BlockSwap, NeverIncreasesJ) {
  const CsrGraph g = gen::random_geometric(1000, 4);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  std::vector<BlockId> mapping(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    mapping[u] = static_cast<BlockId>(u % 16);
  }
  const Cost before = mapping_cost(g, topo, mapping);
  BlockSwapConfig config;
  swap_refine_mapping(g, topo, mapping, config);
  EXPECT_LE(mapping_cost(g, topo, mapping), before);
}

TEST(BlockSwap, PreservesBlockContents) {
  // Swapping permutes PEs between blocks but never moves single nodes.
  const CsrGraph g = gen::barabasi_albert(500, 3, 2);
  const SystemHierarchy topo = SystemHierarchy::parse("2:4", "1:10");
  std::vector<BlockId> mapping(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    mapping[u] = static_cast<BlockId>(u % 8);
  }
  const auto sizes_before = block_weights_of(g, mapping, 8);
  BlockSwapConfig config;
  swap_refine_mapping(g, topo, mapping, config);
  auto sizes_after = block_weights_of(g, mapping, 8);
  std::sort(sizes_after.begin(), sizes_after.end());
  auto sorted_before = sizes_before;
  std::sort(sorted_before.begin(), sorted_before.end());
  EXPECT_EQ(sizes_after, sorted_before);
}

TEST(IntMapLite, ProducesValidBalancedMapping) {
  const CsrGraph g = gen::random_geometric(2000, 8);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");
  IntMapConfig config;
  const IntMapResult r = offline_recursive_multisection(g, topo, config);
  verify_mapping(g, topo, r.mapping);
  EXPECT_TRUE(is_balanced(g, r.mapping, topo.num_pes(), 0.03));
}

TEST(IntMapLite, MapsCliqueChainWellOnToyHierarchy) {
  // 4 cliques on a 2x2 hierarchy: the optimal mapping keeps each clique on
  // one PE and bridged cliques in the same top-level module where possible.
  const CsrGraph g = testing::clique_chain(4, 8);
  const SystemHierarchy topo = SystemHierarchy::parse("2:2", "1:100");
  IntMapConfig config;
  const IntMapResult r = offline_recursive_multisection(g, topo, config);
  // Each clique intact on a single PE.
  for (NodeId c = 0; c < 4; ++c) {
    for (NodeId u = 1; u < 8; ++u) {
      EXPECT_EQ(r.mapping[c * 8 + u], r.mapping[c * 8]);
    }
  }
  // Cost must be near the optimum: two bridges inside modules (2 * 2 * 1),
  // one bridge across (2 * 100) -> J = 204 for the best layout.
  EXPECT_LE(mapping_cost(g, topo, r.mapping), 2 * 2 * 1 + 2 * 100);
}

TEST(IntMapLite, BeatsUnrefinedRecursiveMultisection) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 12);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:4", "1:10:100");
  IntMapConfig with_swap;
  with_swap.swap_refinement = true;
  IntMapConfig without_swap;
  without_swap.swap_refinement = false;
  const Cost with_cost =
      mapping_cost(g, topo, offline_recursive_multisection(g, topo, with_swap).mapping);
  const Cost without_cost = mapping_cost(
      g, topo, offline_recursive_multisection(g, topo, without_swap).mapping);
  EXPECT_LE(with_cost, without_cost);
}

} // namespace
} // namespace oms
