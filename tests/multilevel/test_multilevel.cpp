#include "oms/multilevel/multilevel_partitioner.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(BfsBandPartition, ProducesContiguousBalancedBands) {
  const CsrGraph g = gen::grid_2d(20, 20);
  const NodeWeight lmax = max_block_weight(g.total_node_weight(), 4, 0.03);
  const auto partition = bfs_band_partition(g, 4, lmax, 1);
  verify_partition(g, partition, 4);
  EXPECT_TRUE(is_balanced(g, partition, 4, 0.03));
  // Bands on a grid cut far fewer edges than random assignment would.
  EXPECT_LT(edge_cut(g, partition), static_cast<Cost>(g.num_edges()) / 2);
}

TEST(MultilevelPartitioner, BalancedAcrossKSweep) {
  const CsrGraph g = gen::random_geometric(3000, 17);
  for (const BlockId k : {2, 3, 7, 16, 64, 100}) {
    MultilevelConfig config;
    const MultilevelResult r = multilevel_partition(g, k, config);
    verify_partition(g, r.partition, k);
    EXPECT_TRUE(is_balanced(g, r.partition, k, 0.03)) << "k=" << k;
  }
}

TEST(MultilevelPartitioner, ClearlyBeatsHashing) {
  // The role KaMinPar plays in the paper: a quality reference far above the
  // streaming baselines (Fig. 2b shows ~3000% improvement over Hashing).
  const CsrGraph g = gen::grid_2d(60, 60);
  const BlockId k = 16;
  MultilevelConfig config;
  const MultilevelResult ml = multilevel_partition(g, k, config);

  PartitionConfig pc;
  pc.k = k;
  HashingPartitioner hashing(g.num_nodes(), g.total_node_weight(), pc);
  const StreamResult hash = run_one_pass(g, hashing, 1);

  EXPECT_LT(edge_cut(g, ml.partition) * 4, edge_cut(g, hash.assignment));
}

TEST(MultilevelPartitioner, OptimalOnTwoCliques) {
  const CsrGraph g = testing::two_cliques_bridge(20);
  MultilevelConfig config;
  const MultilevelResult r = multilevel_partition(g, 2, config);
  EXPECT_EQ(edge_cut(g, r.partition), 1);
}

TEST(MultilevelPartitioner, UsesCoarseningOnLargeInputs) {
  const CsrGraph g = gen::barabasi_albert(20000, 4, 5);
  MultilevelConfig config;
  const MultilevelResult r = multilevel_partition(g, 8, config);
  EXPECT_GT(r.levels_used, 0);
  EXPECT_GT(r.peak_graph_bytes, g.memory_footprint_bytes());
  verify_partition(g, r.partition, 8);
}

TEST(MultilevelPartitioner, HandlesDisconnectedGraphs) {
  GraphBuilder builder(100);
  for (NodeId u = 0; u < 48; ++u) {
    builder.add_edge(u, u + 1);
  }
  for (NodeId u = 50; u < 99; ++u) {
    builder.add_edge(u, u + 1);
  }
  const CsrGraph g = std::move(builder).build();
  MultilevelConfig config;
  const MultilevelResult r = multilevel_partition(g, 4, config);
  verify_partition(g, r.partition, 4);
  EXPECT_TRUE(is_balanced(g, r.partition, 4, 0.03));
}

TEST(BfsBandPartition, EmptyGraphDoesNotRollTheRng) {
  // n == 0 used to reach Rng::next_below(0) — UB. Must return cleanly.
  const CsrGraph empty = std::move(GraphBuilder(0)).build();
  const auto partition = bfs_band_partition(empty, 4, 10, 1);
  EXPECT_TRUE(partition.empty());
}

TEST(MultilevelPartitioner, EmptyGraph) {
  const CsrGraph empty = std::move(GraphBuilder(0)).build();
  const MultilevelResult r = multilevel_partition(empty, 8, MultilevelConfig{});
  EXPECT_TRUE(r.partition.empty());
  EXPECT_EQ(r.levels_used, 0);
}

TEST(MultilevelPartitioner, OvershootGuardStopsBeforeContracting) {
  // One huge node inflates the cluster weight cap (W / target) far above the
  // clique size, so a single clustering round collapses the 60 cliques to
  // ~61 clusters — overshooting the 256-node coarsening target by more than
  // 2x. The (previously dead) guard must refuse to contract that clustering:
  // levels_used stays 0. The old code contracted anyway and handed the
  // initial partitioner a coarsest graph ~4x smaller than it is tuned for.
  GraphBuilder builder(601);
  for (NodeId clique = 0; clique < 60; ++clique) {
    const NodeId base = clique * 10;
    for (NodeId u = 0; u < 10; ++u) {
      for (NodeId v = u + 1; v < 10; ++v) {
        builder.add_edge(base + u, base + v);
      }
    }
  }
  builder.set_node_weight(600, 100000);
  const CsrGraph g = std::move(builder).build();
  MultilevelConfig config;
  const MultilevelResult r = multilevel_partition(g, 2, config);
  EXPECT_EQ(r.levels_used, 0);
  verify_partition(g, r.partition, 2);
}

TEST(MultilevelPartitioner, KOneDegenerate) {
  const CsrGraph g = testing::cycle_graph(50);
  MultilevelConfig config;
  const MultilevelResult r = multilevel_partition(g, 1, config);
  for (const BlockId b : r.partition) {
    EXPECT_EQ(b, 0);
  }
}

} // namespace
} // namespace oms
