#include "oms/multilevel/contraction.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/multilevel/label_propagation.hpp"
#include "oms/partition/metrics.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(Contract, PreservesTotalNodeWeight) {
  const CsrGraph g = gen::grid_2d(20, 20);
  LabelPropagationConfig config;
  const auto cluster = lp_clustering(g, 8, config);
  const Contraction c = contract(g, cluster);
  EXPECT_EQ(c.coarse.total_node_weight(), g.total_node_weight());
  EXPECT_LT(c.coarse.num_nodes(), g.num_nodes());
}

TEST(Contract, CoarseEdgeWeightsEqualCrossClusterFineWeights) {
  // Two triangles joined by two parallel-ish paths.
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);
  builder.add_edge(3, 5);
  builder.add_edge(2, 3, 5);
  builder.add_edge(0, 5, 7);
  const CsrGraph g = std::move(builder).build();
  const std::vector<NodeId> cluster{0, 0, 0, 1, 1, 1};
  const Contraction c = contract(g, cluster);
  EXPECT_EQ(c.coarse.num_nodes(), 2u);
  EXPECT_EQ(c.coarse.num_edges(), 1u);
  EXPECT_EQ(c.coarse.total_edge_weight(), 12); // 5 + 7 merged
  EXPECT_EQ(c.coarse.node_weight(0), 3);
  EXPECT_EQ(c.coarse.node_weight(1), 3);
}

TEST(Contract, CutIsPreservedUnderProjection) {
  // The edge-cut of a coarse partition equals the cut of its projection.
  const CsrGraph g = gen::random_geometric(1500, 12);
  LabelPropagationConfig config;
  const auto cluster = lp_clustering(g, 6, config);
  const Contraction c = contract(g, cluster);

  std::vector<BlockId> coarse_partition(c.coarse.num_nodes());
  for (NodeId u = 0; u < c.coarse.num_nodes(); ++u) {
    coarse_partition[u] = static_cast<BlockId>(u % 4);
  }
  const auto fine_partition = project_partition(c.fine_to_coarse, coarse_partition);
  EXPECT_EQ(edge_cut(c.coarse, coarse_partition), edge_cut(g, fine_partition));
}

TEST(InducedSubgraph, ExtractsCliqueExactly) {
  const CsrGraph g = testing::clique_chain(3, 5);
  std::vector<NodeId> first_clique{0, 1, 2, 3, 4};
  const InducedSubgraph sub = induced_subgraph(g, first_clique);
  EXPECT_EQ(sub.graph.num_nodes(), 5u);
  EXPECT_EQ(sub.graph.num_edges(), 10u); // C(5,2)
  EXPECT_EQ(sub.to_parent, first_clique);
}

TEST(InducedSubgraph, DropsEdgesLeavingTheSubset) {
  const CsrGraph g = testing::path_graph(10);
  const InducedSubgraph sub = induced_subgraph(g, {2, 3, 4, 8});
  // Path edges inside subset: (2,3), (3,4); node 8's neighbors are outside.
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.graph.degree(3), 0u); // local id 3 = original node 8
}

TEST(InducedSubgraph, PreservesWeights) {
  GraphBuilder builder(4);
  builder.set_node_weight(1, 9);
  builder.add_edge(0, 1, 4);
  builder.add_edge(1, 2, 6);
  const CsrGraph g = std::move(builder).build();
  const InducedSubgraph sub = induced_subgraph(g, {0, 1});
  EXPECT_EQ(sub.graph.node_weight(1), 9);
  EXPECT_EQ(sub.graph.total_edge_weight(), 4);
}

TEST(InducedSubgraphDeath, RejectsDuplicateNodes) {
  const CsrGraph g = testing::path_graph(4);
  EXPECT_DEATH((void)induced_subgraph(g, {0, 0}), "duplicate");
}

} // namespace
} // namespace oms
