#include "oms/partition/fennel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "oms/graph/generators.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

PartitionConfig config_for(BlockId k, double eps = 0.03) {
  PartitionConfig pc;
  pc.k = k;
  pc.epsilon = eps;
  return pc;
}

TEST(FennelParams, AlphaMatchesPaperFormula) {
  // alpha = sqrt(k) * m / n^(3/2).
  const auto params = FennelParams::standard(/*n=*/1000, /*m=*/5000, /*k=*/16);
  const double expected = std::sqrt(16.0) * 5000.0 / std::pow(1000.0, 1.5);
  EXPECT_DOUBLE_EQ(params.alpha, expected);
  EXPECT_DOUBLE_EQ(params.gamma, 1.5);
}

TEST(FennelParams, PenaltyIsMonotoneAndConvex) {
  const double alpha = 0.5;
  double prev_penalty = fennel_penalty(alpha, 1.5, 0);
  double prev_delta = 0.0;
  for (NodeWeight w = 1; w <= 100; ++w) {
    const double penalty = fennel_penalty(alpha, 1.5, w);
    EXPECT_GE(penalty, prev_penalty);
    if (w > 1) {
      // gamma = 1.5 => marginal penalty shrinks (concave sqrt growth).
      EXPECT_LE(penalty - prev_penalty, prev_delta + 1e-12);
    }
    prev_delta = penalty - prev_penalty;
    prev_penalty = penalty;
  }
}

TEST(FennelParams, GammaTwoMatchesLinearPenalty) {
  // gamma = 2 => f'(w) = 2 alpha w, the "repulsion from non-neighbors" end
  // of the interpolation.
  EXPECT_DOUBLE_EQ(fennel_penalty(0.25, 2.0, 10), 0.25 * 2.0 * 10.0);
}

TEST(Fennel, KeepsCliquesTogetherWithCalibratedAlpha) {
  // The standard alpha = sqrt(k) m / n^(3/2) is calibrated for sparse
  // graphs; on a 16-node double-clique it overwhelms the attraction term.
  // Pick alpha in the window where (a) a single assigned neighbor beats an
  // empty block (alpha * 1.5 < 1) and (b) a full clique repels the bridge
  // node (alpha * 1.5 * sqrt(8) > 1): the optimal cut of 1 then emerges.
  const CsrGraph g = testing::two_cliques_bridge(8);
  FennelParams params;
  params.alpha = 0.3;
  FennelPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(2), params);
  const StreamResult r = run_one_pass(g, p, 1);
  EXPECT_EQ(edge_cut(g, r.assignment), 1);
  EXPECT_TRUE(is_balanced(g, r.assignment, 2, 0.03));
}

TEST(Fennel, FirstNodeGoesToEmptyBlockAndNeighborsFollow) {
  const CsrGraph g = testing::clique_chain(2, 6);
  FennelParams params;
  params.alpha = 0.35; // see KeepsCliquesTogetherWithCalibratedAlpha
  FennelPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(2), params);
  const StreamResult r = run_one_pass(g, p, 1);
  // Each clique must be internally contiguous.
  for (NodeId u = 1; u < 6; ++u) {
    EXPECT_EQ(r.assignment[u], r.assignment[0]);
  }
  for (NodeId u = 7; u < 12; ++u) {
    EXPECT_EQ(r.assignment[u], r.assignment[6]);
  }
}

TEST(Fennel, BalancedAcrossKSweep) {
  const CsrGraph g = gen::rmat(12, 6, 17);
  for (const BlockId k : {2, 3, 5, 16, 63, 128, 500}) {
    FennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                        config_for(k));
    const StreamResult r = run_one_pass(g, p, 1);
    verify_partition(g, r.assignment, k);
    EXPECT_TRUE(is_balanced(g, r.assignment, k, 0.03)) << "k=" << k;
  }
}

TEST(Fennel, CutsFewerEdgesThanHashing) {
  const CsrGraph g = gen::random_geometric(5000, 23);
  const PartitionConfig pc = config_for(32);
  FennelPartitioner fennel(g.num_nodes(), g.num_edges(), g.total_node_weight(), pc);
  HashingPartitioner hashing(g.num_nodes(), g.total_node_weight(), pc);
  const Cost fennel_cut = edge_cut(g, run_one_pass(g, fennel, 1).assignment);
  const Cost hash_cut = edge_cut(g, run_one_pass(g, hashing, 1).assignment);
  EXPECT_LT(fennel_cut * 2, hash_cut);
}

TEST(Fennel, WorkIsLinearInMPlusNK) {
  const CsrGraph g = gen::barabasi_albert(2000, 4, 3);
  const BlockId k = 128;
  FennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                      config_for(k));
  const StreamResult r = run_one_pass(g, p, 1);
  EXPECT_EQ(r.work.neighbor_visits, g.num_arcs());
  EXPECT_EQ(r.work.score_evaluations,
            static_cast<std::uint64_t>(g.num_nodes()) * static_cast<std::uint64_t>(k));
}

TEST(Fennel, ExplicitParamsOverrideStandardAlpha) {
  const CsrGraph g = testing::cycle_graph(100);
  FennelParams params;
  params.alpha = 1e9; // absurd repulsion: behaves like pure balance-filling
  params.gamma = 1.5;
  FennelPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(4), params);
  const StreamResult r = run_one_pass(g, p, 1);
  // With overwhelming penalty every node goes to the lightest block;
  // weights stay within one node of each other.
  const auto weights = block_weights_of(g, r.assignment, 4);
  const auto [min_it, max_it] = std::minmax_element(weights.begin(), weights.end());
  EXPECT_LE(*max_it - *min_it, 1);
}

TEST(Fennel, UnassignRestoresBlockWeight) {
  const CsrGraph g = testing::path_graph(10);
  FennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                      config_for(2, 1.0));
  WorkCounters counters;
  p.prepare(1);
  const StreamedNode n0{0, 1, g.neighbors(0), g.incident_weights(0)};
  const BlockId b = p.assign(n0, 0, counters);
  EXPECT_EQ(p.block_of(0), b);
  p.unassign(0, 1);
  EXPECT_EQ(p.block_of(0), kInvalidBlock);
  // Re-assignment lands somewhere valid again.
  const BlockId b2 = p.assign(n0, 0, counters);
  EXPECT_GE(b2, 0);
  EXPECT_LT(b2, 2);
}

TEST(Fennel, SequentialRunsAreDeterministic) {
  const CsrGraph g = gen::barabasi_albert(1000, 3, 5);
  FennelPartitioner a(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                      config_for(16));
  FennelPartitioner b(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                      config_for(16));
  EXPECT_EQ(run_one_pass(g, a, 1).assignment, run_one_pass(g, b, 1).assignment);
}

TEST(Fennel, ParallelRunsRemainValid) {
  const CsrGraph g = gen::grid_3d(15, 15, 15);
  for (const int threads : {2, 4}) {
    FennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                        config_for(16));
    const StreamResult r = run_one_pass(g, p, threads);
    verify_partition(g, r.assignment, 16);
    EXPECT_TRUE(is_balanced(g, r.assignment, 16, 0.05));
  }
}

} // namespace
} // namespace oms
