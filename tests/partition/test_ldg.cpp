#include "oms/partition/ldg.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/partition/hashing.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

PartitionConfig config_for(BlockId k, double eps = 0.03) {
  PartitionConfig pc;
  pc.k = k;
  pc.epsilon = eps;
  return pc;
}

TEST(Ldg, FollowsNeighborsOnToyGraph) {
  // Stream a triangle plus a pendant: after 0 lands somewhere, 1 and 2 must
  // join it (attraction beats the small penalty), and 3 follows its neighbor.
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const CsrGraph g = std::move(builder).build();
  // k=2 with eps large enough that one block can hold 3 of 4 nodes.
  LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(2, 0.5));
  const StreamResult r = run_one_pass(g, p, 1);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[0], r.assignment[2]);
  // Block of {0,1,2} is full (Lmax = ceil(1.5 * 4 / 2) = 3), so 3 overflows
  // to the other block despite its neighbor.
  EXPECT_NE(r.assignment[3], r.assignment[2]);
}

TEST(Ldg, TieBreaksTowardsLighterBlock) {
  // An isolated node has score 0 everywhere; it must go to the lighter block.
  GraphBuilder builder(4);
  builder.add_edge(0, 1); // 0,1 cluster; 2, 3 isolated
  const CsrGraph g = std::move(builder).build();
  LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(2, 1.0));
  const StreamResult r = run_one_pass(g, p, 1);
  // 0 -> block A; 1 joins it; 2 must take the empty block; 3 balances.
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_NE(r.assignment[2], r.assignment[0]);
}

TEST(Ldg, AbsorbsBridgeNodeThenOverflows) {
  // LDG's multiplicative penalty never prefers an empty block over any
  // positive attraction, so the first clique absorbs the bridge node 8 until
  // block capacity (Lmax = 9) stops it; the remaining clique-B nodes fill
  // block B. Clique A itself must stay intact.
  const CsrGraph g = testing::two_cliques_bridge(8);
  LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(2));
  const StreamResult r = run_one_pass(g, p, 1);
  for (NodeId u = 1; u < 8; ++u) {
    EXPECT_EQ(r.assignment[u], r.assignment[0]);
  }
  EXPECT_EQ(r.assignment[8], r.assignment[0]); // bridge node pulled across
  // Cut = node 8's 7 edges into clique B; far below the ~half-of-m a random
  // split would cost.
  EXPECT_EQ(edge_cut(g, r.assignment), 7);
  EXPECT_TRUE(is_balanced(g, r.assignment, 2, 0.03));
}

TEST(Ldg, BalancedAcrossKSweep) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 11);
  for (const BlockId k : {2, 3, 5, 16, 63, 128}) {
    LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(k));
    const StreamResult r = run_one_pass(g, p, 1);
    verify_partition(g, r.assignment, k);
    EXPECT_TRUE(is_balanced(g, r.assignment, k, 0.03)) << "k=" << k;
  }
}

TEST(Ldg, BeatsHashingOnStructuredGraphs) {
  const CsrGraph g = gen::grid_2d(50, 50);
  PartitionConfig pc = config_for(8);
  LdgPartitioner ldg(g.num_nodes(), g.total_node_weight(), pc);
  HashingPartitioner hashing(g.num_nodes(), g.total_node_weight(), pc);
  const Cost ldg_cut = edge_cut(g, run_one_pass(g, ldg, 1).assignment);
  const Cost hash_cut = edge_cut(g, run_one_pass(g, hashing, 1).assignment);
  EXPECT_LT(ldg_cut * 2, hash_cut); // at least 2x better on a mesh
}

TEST(Ldg, WorkIsLinearInMPlusNK) {
  const CsrGraph g = gen::barabasi_albert(2000, 4, 3);
  const BlockId k = 64;
  LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(k));
  const StreamResult r = run_one_pass(g, p, 1);
  EXPECT_EQ(r.work.neighbor_visits, g.num_arcs());
  EXPECT_EQ(r.work.score_evaluations,
            static_cast<std::uint64_t>(g.num_nodes()) * static_cast<std::uint64_t>(k));
}

TEST(Ldg, HonorsNodeWeights) {
  GraphBuilder builder(4);
  builder.set_node_weight(0, 10);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(0, 3);
  const CsrGraph g = std::move(builder).build();
  // Lmax = ceil(1.03 * 13 / 2) = 7: node 0 (weight 10) exceeds every block's
  // bound, so LDG falls back to the lightest block; the rest must balance
  // around it without joining node 0's block beyond capacity.
  LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(2));
  const StreamResult r = run_one_pass(g, p, 1);
  verify_partition(g, r.assignment, 2);
  // Nodes 1-3 cannot join block of node 0 (it is over capacity already).
  EXPECT_NE(r.assignment[1], r.assignment[0]);
  EXPECT_NE(r.assignment[2], r.assignment[0]);
  EXPECT_NE(r.assignment[3], r.assignment[0]);
}

TEST(Ldg, ParallelRunsRemainValid) {
  const CsrGraph g = gen::random_geometric(4000, 5);
  for (const int threads : {2, 4}) {
    LdgPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(16));
    const StreamResult r = run_one_pass(g, p, threads);
    verify_partition(g, r.assignment, 16);
    EXPECT_TRUE(is_balanced(g, r.assignment, 16, 0.05)); // parallel slack
  }
}

} // namespace
} // namespace oms
