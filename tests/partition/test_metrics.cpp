#include "oms/partition/metrics.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/partition/partition_config.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(EdgeCut, KnownPartitionsOnPath) {
  const CsrGraph g = testing::path_graph(6);
  // Split in the middle: one crossing edge.
  EXPECT_EQ(edge_cut(g, std::vector<BlockId>{0, 0, 0, 1, 1, 1}), 1);
  // Alternating: every edge crosses.
  EXPECT_EQ(edge_cut(g, std::vector<BlockId>{0, 1, 0, 1, 0, 1}), 5);
  // All together: nothing crosses.
  EXPECT_EQ(edge_cut(g, std::vector<BlockId>{0, 0, 0, 0, 0, 0}), 0);
}

TEST(EdgeCut, WeightsAreSummed) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 5);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(edge_cut(g, std::vector<BlockId>{0, 1, 1}), 10);
  EXPECT_EQ(edge_cut(g, std::vector<BlockId>{0, 1, 0}), 15);
}

TEST(EdgeCut, CompleteGraphFormula) {
  // K_n split into singleton blocks cuts all C(n,2) edges.
  const CsrGraph g = testing::complete_graph(6);
  std::vector<BlockId> partition(6);
  for (NodeId u = 0; u < 6; ++u) {
    partition[u] = static_cast<BlockId>(u);
  }
  EXPECT_EQ(edge_cut(g, partition), 15);
}

TEST(EdgeCut, AgreesWithIndependentPairCount) {
  // Cross-check against a quadratic reference on a random graph/partition.
  const CsrGraph g = gen::erdos_renyi(200, 1000, 4);
  Rng rng(7);
  std::vector<BlockId> partition(g.num_nodes());
  for (auto& b : partition) {
    b = static_cast<BlockId>(rng.next_below(5));
  }
  Cost reference = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto neigh = g.neighbors(u);
    const auto weights = g.incident_weights(u);
    for (std::size_t i = 0; i < neigh.size(); ++i) {
      if (u < neigh[i] && partition[u] != partition[neigh[i]]) {
        reference += weights[i];
      }
    }
  }
  EXPECT_EQ(edge_cut(g, partition), reference);
}

TEST(BlockWeightsOf, SumsNodeWeights) {
  GraphBuilder builder(4);
  builder.set_node_weight(0, 3);
  builder.set_node_weight(1, 4);
  builder.add_edge(0, 1);
  const CsrGraph g = std::move(builder).build();
  const auto weights = block_weights_of(g, std::vector<BlockId>{0, 1, 1, 0}, 2);
  EXPECT_EQ(weights[0], 4); // 3 + 1
  EXPECT_EQ(weights[1], 5); // 4 + 1
}

TEST(Imbalance, PerfectlyBalancedIsZero) {
  const CsrGraph g = testing::path_graph(8);
  EXPECT_DOUBLE_EQ(imbalance(g, std::vector<BlockId>{0, 0, 1, 1, 2, 2, 3, 3}, 4), 0.0);
}

TEST(Imbalance, DetectsOverload) {
  const CsrGraph g = testing::path_graph(8);
  // 6 nodes in block 0 of an even 2-way split: 6 / 4 - 1 = 0.5.
  EXPECT_DOUBLE_EQ(imbalance(g, std::vector<BlockId>{0, 0, 0, 0, 0, 0, 1, 1}, 2), 0.5);
}

TEST(IsBalanced, ThresholdIsExactlyLmax) {
  const CsrGraph g = testing::path_graph(10);
  // k = 3, eps = 0.03: Lmax = ceil(1.03 * 10/3) = 4.
  EXPECT_TRUE(is_balanced(g, std::vector<BlockId>{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}, 3,
                          0.03));
  EXPECT_FALSE(is_balanced(g, std::vector<BlockId>{0, 0, 0, 0, 0, 1, 1, 2, 2, 2}, 3,
                           0.03));
}

TEST(NumNonEmptyBlocks, CountsCorrectly) {
  EXPECT_EQ(num_non_empty_blocks(std::vector<BlockId>{0, 0, 2, 2}, 4), 2);
  EXPECT_EQ(num_non_empty_blocks(std::vector<BlockId>{0, 1, 2, 3}, 4), 4);
  EXPECT_EQ(num_non_empty_blocks(std::vector<BlockId>{}, 4), 0);
}

TEST(VerifyPartitionDeath, RejectsOutOfRange) {
  const CsrGraph g = testing::path_graph(3);
  EXPECT_DEATH(verify_partition(g, std::vector<BlockId>{0, 1, 5}, 2), "outside");
  EXPECT_DEATH(verify_partition(g, std::vector<BlockId>{0, 1}, 2), "size");
}

TEST(MaxBlockWeight, CeilFormula) {
  EXPECT_EQ(max_block_weight(100, 3, 0.03), 35); // ceil(1.03 * 100 / 3)
  EXPECT_EQ(max_block_weight(64, 4, 0.0), 16);
  EXPECT_EQ(max_block_weight(10, 3, 0.0), 4); // ceil(10/3)
}

} // namespace
} // namespace oms
