#include "oms/partition/restream.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

PartitionConfig config_for(BlockId k) {
  PartitionConfig pc;
  pc.k = k;
  pc.epsilon = 0.03;
  return pc;
}

TEST(ReFennel, RecordsOneCutPerPass) {
  const CsrGraph g = gen::random_geometric(1000, 3);
  ReFennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                        config_for(8));
  const RestreamResult r = restream(g, p, 4);
  EXPECT_EQ(r.cut_per_pass.size(), 4u);
  verify_partition(g, r.assignment, 8);
}

TEST(ReFennel, RestreamingDoesNotWorsenTheCut) {
  // On locality-friendly graphs additional passes refine the first pass.
  const CsrGraph g = gen::grid_2d(40, 40);
  ReFennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                        config_for(4));
  const RestreamResult r = restream(g, p, 5);
  EXPECT_LE(r.cut_per_pass.back(), r.cut_per_pass.front());
}

TEST(ReFennel, FinalAssignmentMatchesLastPassCut) {
  const CsrGraph g = gen::barabasi_albert(800, 3, 9);
  ReFennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                        config_for(6));
  const RestreamResult r = restream(g, p, 3);
  EXPECT_EQ(edge_cut(g, r.assignment), r.cut_per_pass.back());
}

TEST(ReFennel, StaysBalancedAcrossPasses) {
  const CsrGraph g = gen::random_geometric(2000, 13);
  ReFennelPartitioner p(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                        config_for(16));
  const RestreamResult r = restream(g, p, 3);
  EXPECT_TRUE(is_balanced(g, r.assignment, 16, 0.03));
}

TEST(ReFennel, OnePassEqualsPlainFennel) {
  const CsrGraph g = gen::rmat(10, 4, 2);
  ReFennelPartitioner re(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                         config_for(8));
  const RestreamResult r = restream(g, re, 1);
  FennelPartitioner plain(g.num_nodes(), g.num_edges(), g.total_node_weight(),
                          config_for(8));
  const StreamResult s = run_one_pass(g, plain, 1);
  EXPECT_EQ(r.assignment, s.assignment);
}

} // namespace
} // namespace oms
