#include "oms/partition/hashing.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

PartitionConfig config_for(BlockId k, double eps = 0.03, std::uint64_t seed = 1) {
  PartitionConfig pc;
  pc.k = k;
  pc.epsilon = eps;
  pc.seed = seed;
  return pc;
}

TEST(Hashing, AssignsEveryNode) {
  const CsrGraph g = testing::path_graph(100);
  HashingPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(8));
  const StreamResult r = run_one_pass(g, p, 1);
  verify_partition(g, r.assignment, 8);
}

TEST(Hashing, IsSeedDeterministic) {
  const CsrGraph g = gen::erdos_renyi(500, 1500, 2);
  HashingPartitioner a(g.num_nodes(), g.total_node_weight(), config_for(16, 0.03, 7));
  HashingPartitioner b(g.num_nodes(), g.total_node_weight(), config_for(16, 0.03, 7));
  const auto assignment_a = run_one_pass(g, a, 1).assignment;
  EXPECT_EQ(assignment_a, run_one_pass(g, b, 1).assignment);

  HashingPartitioner c(g.num_nodes(), g.total_node_weight(), config_for(16, 0.03, 8));
  EXPECT_NE(assignment_a, run_one_pass(g, c, 1).assignment);
}

TEST(Hashing, RespectsBalanceConstraint) {
  for (const BlockId k : {2, 3, 7, 16, 64}) {
    const CsrGraph g = gen::barabasi_albert(2000, 3, 4);
    HashingPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(k));
    const StreamResult r = run_one_pass(g, p, 1);
    EXPECT_TRUE(is_balanced(g, r.assignment, k, 0.03)) << "k=" << k;
  }
}

TEST(Hashing, ProbesForwardWhenBlockFull) {
  // With eps = 0 and n divisible by k every block must end up exactly full,
  // which forces the probing path.
  const CsrGraph g = testing::path_graph(64);
  HashingPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(4, 0.0));
  const StreamResult r = run_one_pass(g, p, 1);
  const auto weights = block_weights_of(g, r.assignment, 4);
  for (const NodeWeight w : weights) {
    EXPECT_EQ(w, 16);
  }
}

TEST(Hashing, IgnoresGraphStructure) {
  // The same node set with different edges must give identical assignments.
  const CsrGraph a = testing::path_graph(200);
  const CsrGraph b = testing::star_graph(200);
  HashingPartitioner pa(200, 200, config_for(8));
  HashingPartitioner pb(200, 200, config_for(8));
  EXPECT_EQ(run_one_pass(a, pa, 1).assignment, run_one_pass(b, pb, 1).assignment);
}

TEST(Hashing, ConstantWorkPerNode) {
  const CsrGraph g = gen::barabasi_albert(5000, 4, 9);
  HashingPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(128));
  const StreamResult r = run_one_pass(g, p, 1);
  // O(1) per node: score evaluations ~ n (plus rare probes), never ~ n*k.
  EXPECT_LT(r.work.score_evaluations, 2u * g.num_nodes());
  EXPECT_EQ(r.work.neighbor_visits, 0u);
}

TEST(Hashing, ParallelRunStaysBalanced) {
  const CsrGraph g = gen::grid_2d(60, 60);
  for (const int threads : {2, 4}) {
    HashingPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(32));
    const StreamResult r = run_one_pass(g, p, threads);
    verify_partition(g, r.assignment, 32);
    EXPECT_TRUE(is_balanced(g, r.assignment, 32, 0.035)); // tiny parallel slack
  }
}

TEST(Hashing, StateBytesIsOrderNPlusK) {
  const NodeId n = 10000;
  HashingPartitioner p(n, n, config_for(64));
  const std::uint64_t bytes = p.state_bytes();
  EXPECT_GE(bytes, n * sizeof(BlockId));
  EXPECT_LE(bytes, 2 * (n * sizeof(BlockId) + 64 * sizeof(NodeWeight)));
}

TEST(Hashing, SingleBlockDegenerate) {
  const CsrGraph g = testing::cycle_graph(10);
  HashingPartitioner p(g.num_nodes(), g.total_node_weight(), config_for(1));
  const StreamResult r = run_one_pass(g, p, 1);
  for (const BlockId b : r.assignment) {
    EXPECT_EQ(b, 0);
  }
}

} // namespace
} // namespace oms
