#include "oms/mapping/hierarchy.hpp"

#include <gtest/gtest.h>

namespace oms {
namespace {

TEST(Hierarchy, PaperConfiguration) {
  const SystemHierarchy h = SystemHierarchy::parse("4:16:2", "1:10:100");
  EXPECT_EQ(h.num_levels(), 3u);
  EXPECT_EQ(h.num_pes(), 128); // 4 * 16 * 2
  EXPECT_EQ(h.module_size(0), 1);
  EXPECT_EQ(h.module_size(1), 4);   // a processor
  EXPECT_EQ(h.module_size(2), 64);  // a node
  EXPECT_EQ(h.module_size(3), 128); // the machine
}

TEST(Hierarchy, DistanceCases) {
  const SystemHierarchy h = SystemHierarchy::parse("4:16:2", "1:10:100");
  EXPECT_EQ(h.distance(0, 0), 0);    // same PE
  EXPECT_EQ(h.distance(0, 1), 1);    // same processor (cores 0,1 of proc 0)
  EXPECT_EQ(h.distance(0, 3), 1);
  EXPECT_EQ(h.distance(0, 4), 10);   // different processor, same node
  EXPECT_EQ(h.distance(3, 4), 10);
  EXPECT_EQ(h.distance(0, 63), 10);  // last core of the same node
  EXPECT_EQ(h.distance(0, 64), 100); // other node
  EXPECT_EQ(h.distance(63, 64), 100);
  EXPECT_EQ(h.distance(127, 0), 100);
}

TEST(Hierarchy, DistanceIsSymmetric) {
  const SystemHierarchy h = SystemHierarchy::parse("2:3:4", "1:7:50");
  for (BlockId x = 0; x < h.num_pes(); ++x) {
    for (BlockId y = 0; y < h.num_pes(); ++y) {
      EXPECT_EQ(h.distance(x, y), h.distance(y, x));
    }
  }
}

TEST(Hierarchy, SingleLevel) {
  const SystemHierarchy h = SystemHierarchy::parse("8", "5");
  EXPECT_EQ(h.num_pes(), 8);
  EXPECT_EQ(h.distance(0, 0), 0);
  for (BlockId x = 0; x < 8; ++x) {
    for (BlockId y = 0; y < 8; ++y) {
      if (x != y) {
        EXPECT_EQ(h.distance(x, y), 5);
      }
    }
  }
}

TEST(Hierarchy, TrailingExtentOne) {
  // The paper's sweep S = 4:16:r includes r = 1.
  const SystemHierarchy h = SystemHierarchy::parse("4:16:1", "1:10:100");
  EXPECT_EQ(h.num_pes(), 64);
  EXPECT_EQ(h.distance(0, 63), 10); // all PEs share the single "rack"
}

TEST(Hierarchy, ExtentsTopDownReverses) {
  const SystemHierarchy h = SystemHierarchy::parse("4:16:2", "1:10:100");
  const auto td = h.extents_top_down();
  ASSERT_EQ(td.size(), 3u);
  EXPECT_EQ(td[0], 2);
  EXPECT_EQ(td[1], 16);
  EXPECT_EQ(td[2], 4);
}

TEST(Hierarchy, ToStringRoundTrip) {
  const SystemHierarchy h = SystemHierarchy::parse("4:16:2", "1:10:100");
  EXPECT_EQ(h.to_string(), "S=4:16:2 D=1:10:100");
}

TEST(Hierarchy, DistanceIsMonotoneInHierarchyLevel) {
  // For D with increasing distances, farther separation costs more.
  const SystemHierarchy h = SystemHierarchy::parse("2:2:2:2", "1:2:4:8");
  EXPECT_LT(h.distance(0, 1), h.distance(0, 2));
  EXPECT_LT(h.distance(0, 2), h.distance(0, 4));
  EXPECT_LT(h.distance(0, 4), h.distance(0, 8));
  EXPECT_EQ(h.distance(0, 15), 8);
}

TEST(HierarchyDeath, MismatchedLengthsRejected) {
  EXPECT_DEATH(SystemHierarchy::parse("4:16", "1:10:100"), "one distance per");
}

} // namespace
} // namespace oms
