#include "oms/mapping/topology_matrix.hpp"

#include <gtest/gtest.h>

#include "oms/graph/generators.hpp"
#include "oms/mapping/mapping_cost.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(TopologyMatrix, FromHierarchyMatchesHierarchyDistances) {
  const SystemHierarchy topo = SystemHierarchy::parse("4:4:2", "1:10:100");
  const TopologyMatrix matrix = TopologyMatrix::from_hierarchy(topo);
  ASSERT_EQ(matrix.num_pes(), topo.num_pes());
  for (BlockId x = 0; x < topo.num_pes(); ++x) {
    for (BlockId y = 0; y < topo.num_pes(); ++y) {
      EXPECT_EQ(matrix.distance(x, y), topo.distance(x, y));
    }
  }
}

TEST(TopologyMatrix, MatrixCostMatchesHierarchyCost) {
  const CsrGraph g = gen::random_geometric(800, 5);
  const SystemHierarchy topo = SystemHierarchy::parse("4:4", "1:10");
  const TopologyMatrix matrix = TopologyMatrix::from_hierarchy(topo);
  Rng rng(3);
  std::vector<BlockId> mapping(g.num_nodes());
  for (auto& pe : mapping) {
    pe = static_cast<BlockId>(rng.next_below(16));
  }
  EXPECT_EQ(mapping_cost(g, topo, mapping), mapping_cost_matrix(g, matrix, mapping));
}

TEST(TopologyMatrix, Torus2dDistances) {
  const TopologyMatrix torus = TopologyMatrix::torus_2d(4, 4);
  EXPECT_EQ(torus.num_pes(), 16);
  EXPECT_EQ(torus.distance(0, 0), 0);
  EXPECT_EQ(torus.distance(0, 1), 1);  // x-neighbor
  EXPECT_EQ(torus.distance(0, 3), 1);  // x wraparound
  EXPECT_EQ(torus.distance(0, 4), 1);  // y-neighbor
  EXPECT_EQ(torus.distance(0, 12), 1); // y wraparound
  EXPECT_EQ(torus.distance(0, 5), 2);  // diagonal
  EXPECT_EQ(torus.distance(0, 10), 4); // opposite corner: 2 + 2
}

TEST(TopologyMatrix, ChainDistances) {
  const TopologyMatrix chain = TopologyMatrix::chain(5);
  EXPECT_EQ(chain.distance(0, 4), 4);
  EXPECT_EQ(chain.distance(2, 3), 1);
  EXPECT_EQ(chain.distance(3, 3), 0);
}

TEST(TopologyMatrix, FullyConnectedIsUniform) {
  const TopologyMatrix fc = TopologyMatrix::fully_connected(6, 7);
  for (BlockId x = 0; x < 6; ++x) {
    for (BlockId y = 0; y < 6; ++y) {
      EXPECT_EQ(fc.distance(x, y), x == y ? 0 : 7);
    }
  }
}

TEST(TopologyMatrix, FullyConnectedCostEqualsCutTimesTwo) {
  // On a uniform switch, J = 2 * uniform * edge-cut: mapping quality reduces
  // to pure partitioning, the degenerate case of process mapping.
  const CsrGraph g = testing::clique_chain(3, 4);
  const TopologyMatrix fc = TopologyMatrix::fully_connected(3, 5);
  std::vector<BlockId> mapping(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    mapping[u] = static_cast<BlockId>(u / 4);
  }
  EXPECT_EQ(mapping_cost_matrix(g, fc, mapping), 2 * 5 * 2); // 2 bridges cut
}

TEST(TopologyMatrixDeath, RejectsAsymmetry) {
  std::vector<std::vector<std::int64_t>> bad{{0, 1}, {2, 0}};
  EXPECT_DEATH((void)TopologyMatrix(std::move(bad)), "symmetric");
}

TEST(TopologyMatrixDeath, RejectsNonZeroDiagonal) {
  std::vector<std::vector<std::int64_t>> bad{{1, 1}, {1, 0}};
  EXPECT_DEATH((void)TopologyMatrix(std::move(bad)), "self-distance");
}

} // namespace
} // namespace oms
