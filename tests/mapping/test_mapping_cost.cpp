#include "oms/mapping/mapping_cost.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "oms/graph/generators.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(MappingCost, ToyExampleByHand) {
  // Path 0-1-2 on a 2x2 hierarchy (4 PEs, d1=1, d2=10).
  const CsrGraph g = testing::path_graph(3);
  const SystemHierarchy h = SystemHierarchy::parse("2:2", "1:10");
  // 0,1 on the same processor (PEs 0,1); 2 across the top level (PE 2).
  // J = 2 * [C_01 * 1 + C_12 * 10] = 2 * 11 (ordered-pair convention).
  EXPECT_EQ(mapping_cost(g, h, std::vector<BlockId>{0, 1, 2}), 22);
}

TEST(MappingCost, SamePEPairsAreFree) {
  const CsrGraph g = testing::complete_graph(4);
  const SystemHierarchy h = SystemHierarchy::parse("4", "3");
  EXPECT_EQ(mapping_cost(g, h, std::vector<BlockId>{0, 0, 0, 0}), 0);
}

TEST(MappingCost, UsesEdgeWeightsAsCommunicationVolume) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 7);
  const CsrGraph g = std::move(builder).build();
  const SystemHierarchy h = SystemHierarchy::parse("2:2", "1:10");
  EXPECT_EQ(mapping_cost(g, h, std::vector<BlockId>{0, 3}), 2 * 7 * 10);
  EXPECT_EQ(mapping_cost(g, h, std::vector<BlockId>{0, 1}), 2 * 7 * 1);
}

TEST(MappingCost, ParallelMatchesSequential) {
  const CsrGraph g = gen::barabasi_albert(3000, 4, 7);
  const SystemHierarchy h = SystemHierarchy::parse("4:16:2", "1:10:100");
  Rng rng(5);
  std::vector<BlockId> mapping(g.num_nodes());
  for (auto& pe : mapping) {
    pe = static_cast<BlockId>(rng.next_below(static_cast<std::uint64_t>(h.num_pes())));
  }
  const Cost seq = mapping_cost(g, h, mapping, 1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(mapping_cost(g, h, mapping, threads), seq);
  }
}

TEST(MappingCost, HierarchyAwarePlacementBeatsScattered) {
  // Two cliques: placing each inside one node must beat splitting them
  // across nodes.
  const CsrGraph g = testing::two_cliques_bridge(8);
  const SystemHierarchy h = SystemHierarchy::parse("8:2", "1:100");
  std::vector<BlockId> together(16);
  std::vector<BlockId> scattered(16);
  for (NodeId u = 0; u < 16; ++u) {
    together[u] = static_cast<BlockId>(u < 8 ? u : 8 + (u - 8)); // clique per node
    scattered[u] = static_cast<BlockId>((u % 2 == 0) ? u / 2 : 8 + u / 2);
  }
  EXPECT_LT(mapping_cost(g, h, together), mapping_cost(g, h, scattered));
}

TEST(PerLevelVolume, DecomposesTotalCommunication) {
  const CsrGraph g = gen::random_geometric(500, 9);
  const SystemHierarchy h = SystemHierarchy::parse("4:4", "1:10");
  Rng rng(3);
  std::vector<BlockId> mapping(g.num_nodes());
  for (auto& pe : mapping) {
    pe = static_cast<BlockId>(rng.next_below(16));
  }
  const auto volume = per_level_volume(g, h, mapping);
  ASSERT_EQ(volume.size(), 3u);
  // Total ordered-pair volume = 2m for unit weights.
  EXPECT_EQ(std::accumulate(volume.begin(), volume.end(), Cost{0}),
            static_cast<Cost>(g.num_arcs()));
  // And J equals the distance-weighted combination.
  EXPECT_EQ(mapping_cost(g, h, mapping), volume[1] * 1 + volume[2] * 10);
}

TEST(VerifyMappingDeath, RejectsOutOfRangePe) {
  const CsrGraph g = testing::path_graph(2);
  const SystemHierarchy h = SystemHierarchy::parse("2:2", "1:10");
  EXPECT_DEATH(verify_mapping(g, h, std::vector<BlockId>{0, 4}), "outside");
}

} // namespace
} // namespace oms
