#include "oms/graph/graph_builder.hpp"

#include <gtest/gtest.h>

#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(GraphBuilder, BuildsSimpleTriangle) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.degree(u), 2u);
  }
  g.validate();
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0);
  builder.add_edge(1, 1);
  builder.add_edge(0, 1);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, MergesParallelEdgesSummingWeights) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 3);
  builder.add_edge(1, 0, 4); // reversed direction, same edge
  builder.add_edge(0, 1, 5);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.total_edge_weight(), 12);
  EXPECT_EQ(g.incident_weights(0)[0], 12);
  EXPECT_EQ(g.incident_weights(1)[0], 12);
}

TEST(GraphBuilder, AdjacencyIsSorted) {
  GraphBuilder builder(5);
  builder.add_edge(2, 4);
  builder.add_edge(2, 0);
  builder.add_edge(2, 3);
  builder.add_edge(2, 1);
  const CsrGraph g = std::move(builder).build();
  const auto neigh = g.neighbors(2);
  ASSERT_EQ(neigh.size(), 4u);
  EXPECT_TRUE(std::is_sorted(neigh.begin(), neigh.end()));
}

TEST(GraphBuilder, NodeWeightsDefaultToOne) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.total_node_weight(), 4);
  EXPECT_TRUE(g.is_unit_weighted());
}

TEST(GraphBuilder, CustomNodeWeights) {
  GraphBuilder builder(3);
  builder.set_node_weight(0, 5);
  builder.set_node_weight(2, 7);
  builder.add_edge(0, 1);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.node_weight(0), 5);
  EXPECT_EQ(g.node_weight(1), 1);
  EXPECT_EQ(g.node_weight(2), 7);
  EXPECT_EQ(g.total_node_weight(), 13);
  EXPECT_FALSE(g.is_unit_weighted());
}

TEST(GraphBuilder, IsolatedNodesSurvive) {
  GraphBuilder builder(10);
  builder.add_edge(0, 1);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.num_nodes(), 10u);
  for (NodeId u = 2; u < 10; ++u) {
    EXPECT_EQ(g.degree(u), 0u);
  }
  g.validate();
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder builder(3);
  const CsrGraph g = std::move(builder).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphBuilderDeath, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.add_edge(0, 2), "out of range");
}

TEST(GraphBuilderDeath, RejectsNonPositiveWeight) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.add_edge(0, 1, 0), "positive");
}

TEST(TestSupport, CliqueChainShape) {
  const CsrGraph g = testing::clique_chain(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  // 4 cliques of C(5,2)=10 edges plus 3 bridges.
  EXPECT_EQ(g.num_edges(), 43u);
  g.validate();
}

TEST(TestSupport, TwoCliquesBridgeHasSingleBridge) {
  const CsrGraph g = testing::two_cliques_bridge(6);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 2u * 15u + 1u);
}

} // namespace
} // namespace oms
