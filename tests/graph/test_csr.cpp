#include "oms/graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include "tests/test_support.hpp"

namespace oms {
namespace {

TEST(CsrGraph, DegreeAndNeighbors) {
  const CsrGraph g = testing::path_graph(5);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0], 1u);
  EXPECT_EQ(n2[1], 3u);
}

TEST(CsrGraph, ArcAndEdgeCounts) {
  const CsrGraph g = testing::cycle_graph(7);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.num_arcs(), 14u);
}

TEST(CsrGraph, MaxDegree) {
  const CsrGraph star = testing::star_graph(9);
  EXPECT_EQ(star.max_degree(), 8u);
  const CsrGraph path = testing::path_graph(9);
  EXPECT_EQ(path.max_degree(), 2u);
}

TEST(CsrGraph, TotalWeights) {
  const CsrGraph g = testing::complete_graph(4);
  EXPECT_EQ(g.total_node_weight(), 4);
  EXPECT_EQ(g.total_edge_weight(), 6);
}

TEST(CsrGraph, ValidatePassesOnWellFormedGraphs) {
  testing::path_graph(10).validate();
  testing::cycle_graph(10).validate();
  testing::complete_graph(6).validate();
  testing::star_graph(12).validate();
}

TEST(CsrGraph, MemoryFootprintGrowsWithSize) {
  const CsrGraph small = testing::path_graph(10);
  const CsrGraph large = testing::path_graph(1000);
  EXPECT_GT(large.memory_footprint_bytes(), small.memory_footprint_bytes());
  EXPECT_GT(small.memory_footprint_bytes(), 0u);
}

TEST(CsrGraphDeath, ConstructorRejectsBadShapes) {
  // xadj must have n+1 entries.
  EXPECT_DEATH(CsrGraph({0}, {}, {}, {NodeWeight{1}}), "n\\+1");
  // weights must match arcs.
  EXPECT_DEATH(CsrGraph({0, 1, 2}, {1, 0}, {1}, {1, 1}), "weight per arc");
}

TEST(CsrGraphDeath, ConstructorRejectsNegativeEdgeWeight) {
  EXPECT_DEATH(CsrGraph({0, 1, 2}, {1, 0}, {-1, -1}, {1, 1}), "positive");
}

} // namespace
} // namespace oms
