#include "oms/graph/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "oms/graph/generators.hpp"
#include "oms/partition/metrics.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

bool is_permutation_of_iota(const std::vector<NodeId>& perm) {
  std::vector<NodeId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<NodeId>(i)) {
      return false;
    }
  }
  return true;
}

TEST(Ordering, AllOrdersArePermutations) {
  const CsrGraph g = gen::barabasi_albert(500, 3, 2);
  for (const StreamOrder order :
       {StreamOrder::kNatural, StreamOrder::kRandom, StreamOrder::kBfs,
        StreamOrder::kDegreeAscending, StreamOrder::kDegreeDescending}) {
    const auto perm = make_order(g, order, 17);
    EXPECT_TRUE(is_permutation_of_iota(perm)) << stream_order_name(order);
  }
}

TEST(Ordering, NaturalIsIdentity) {
  const CsrGraph g = testing::path_graph(10);
  const auto perm = make_order(g, StreamOrder::kNatural);
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(perm[i], i);
  }
}

TEST(Ordering, DegreeOrdersAreSorted) {
  const CsrGraph g = gen::barabasi_albert(300, 2, 5);
  const auto asc = make_order(g, StreamOrder::kDegreeAscending);
  for (std::size_t i = 1; i < asc.size(); ++i) {
    EXPECT_LE(g.degree(asc[i - 1]), g.degree(asc[i]));
  }
  const auto desc = make_order(g, StreamOrder::kDegreeDescending);
  for (std::size_t i = 1; i < desc.size(); ++i) {
    EXPECT_GE(g.degree(desc[i - 1]), g.degree(desc[i]));
  }
}

TEST(Ordering, BfsVisitsNeighborsBeforeDistantNodes) {
  const CsrGraph g = testing::path_graph(50);
  const auto perm = make_order(g, StreamOrder::kBfs);
  // BFS from 0 on a path is exactly the natural order.
  for (NodeId i = 0; i < 50; ++i) {
    EXPECT_EQ(perm[i], i);
  }
}

TEST(Ordering, BfsCoversDisconnectedComponents) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(3, 4); // component without node 2 and 5
  const CsrGraph g = std::move(builder).build();
  const auto perm = make_order(g, StreamOrder::kBfs);
  EXPECT_TRUE(is_permutation_of_iota(perm));
}

TEST(Ordering, ApplyOrderPreservesStructure) {
  const CsrGraph g = gen::random_geometric(400, 3);
  const auto perm = make_order(g, StreamOrder::kRandom, 99);
  const CsrGraph h = apply_order(g, perm);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.total_edge_weight(), g.total_edge_weight());
  EXPECT_EQ(h.max_degree(), g.max_degree());
  // Degrees transport through the permutation: new id i was old perm[i].
  for (NodeId i = 0; i < h.num_nodes(); ++i) {
    EXPECT_EQ(h.degree(i), g.degree(perm[i]));
  }
  h.validate();
}

TEST(Ordering, EdgeCutInvariantUnderRelabeling) {
  const CsrGraph g = gen::random_geometric(300, 8);
  const auto perm = make_order(g, StreamOrder::kRandom, 123);
  const CsrGraph h = apply_order(g, perm);
  // Any partition of g maps to the relabeled partition of h with equal cut.
  std::vector<BlockId> part_g(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    part_g[u] = static_cast<BlockId>(u % 4);
  }
  std::vector<BlockId> part_h(g.num_nodes());
  for (NodeId new_id = 0; new_id < g.num_nodes(); ++new_id) {
    part_h[new_id] = part_g[perm[new_id]];
  }
  EXPECT_EQ(edge_cut(g, part_g), edge_cut(h, part_h));
}

TEST(Ordering, RandomOrderIsSeedDeterministic) {
  const CsrGraph g = testing::path_graph(100);
  EXPECT_EQ(make_order(g, StreamOrder::kRandom, 5),
            make_order(g, StreamOrder::kRandom, 5));
  EXPECT_NE(make_order(g, StreamOrder::kRandom, 5),
            make_order(g, StreamOrder::kRandom, 6));
}

TEST(OrderingDeath, ApplyOrderRejectsNonPermutation) {
  const CsrGraph g = testing::path_graph(4);
  EXPECT_DEATH((void)apply_order(g, {0, 0, 1, 2}), "not a permutation");
}

} // namespace
} // namespace oms
