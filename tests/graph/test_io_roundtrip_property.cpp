/// Property suite: every generator family round-trips losslessly through
/// both serialization formats, and the disk stream delivers exactly the
/// in-memory adjacency — the contract the disk-streaming experiments rely on.
#include <gtest/gtest.h>

#include <cstdio>

#include "oms/graph/generators.hpp"
#include "oms/graph/io.hpp"
#include "oms/stream/metis_stream.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

CsrGraph make_family_instance(int family) {
  // Randomized families draw their seed from the shared test seed so the
  // property holds over fresh instances when OMS_TEST_SEED is varied.
  const std::uint64_t seed = oms::testing::draw_seed(static_cast<std::uint64_t>(family));
  switch (family) {
    case 0: return gen::grid_2d(17, 23);
    case 1: return gen::grid_3d(6, 7, 8);
    case 2: return gen::random_geometric(900, seed);
    case 3: return gen::delaunay(700, seed);
    case 4: return gen::barabasi_albert(800, 3, seed);
    case 5: return gen::rmat(9, 4, seed);
    case 6: return gen::erdos_renyi(600, 2000, seed);
    case 7: return gen::watts_strogatz(500, 4, 0.15, seed);
    default: return gen::road_network(25, 25, seed);
  }
}

class IoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTrip, MetisAndBinaryPreserveEverything) {
  SCOPED_TRACE("OMS_TEST_SEED=" + std::to_string(oms::testing::test_seed()));
  const CsrGraph original = make_family_instance(GetParam());
  const std::string base = ::testing::TempDir() + "/oms_rt_" +
                           std::to_string(GetParam());

  write_metis(original, base + ".graph");
  const CsrGraph via_metis = read_metis(base + ".graph");
  write_binary(original, base + ".bin");
  const CsrGraph via_binary = read_binary(base + ".bin");

  for (const CsrGraph* loaded : {&via_metis, &via_binary}) {
    ASSERT_EQ(loaded->num_nodes(), original.num_nodes());
    ASSERT_EQ(loaded->num_edges(), original.num_edges());
    EXPECT_EQ(loaded->total_edge_weight(), original.total_edge_weight());
    EXPECT_EQ(loaded->total_node_weight(), original.total_node_weight());
    for (NodeId u = 0; u < original.num_nodes(); ++u) {
      ASSERT_EQ(loaded->degree(u), original.degree(u)) << u;
      const auto expect = original.neighbors(u);
      const auto actual = loaded->neighbors(u);
      for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(actual[i], expect[i]);
      }
    }
    loaded->validate();
  }

  // The node stream must deliver the same adjacency, node by node.
  MetisNodeStream stream(base + ".graph");
  StreamedNode node{};
  while (stream.next(node)) {
    const auto expect = original.neighbors(node.id);
    ASSERT_EQ(node.neighbors.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(node.neighbors[i], expect[i]);
    }
  }

  std::remove((base + ".graph").c_str());
  std::remove((base + ".bin").c_str());
}

std::string family_name(const ::testing::TestParamInfo<int>& param_info) {
  static constexpr const char* kNames[] = {"grid2d", "grid3d", "rgg",
                                           "delaunay", "ba", "rmat", "er",
                                           "ws", "roads"};
  return kNames[param_info.param];
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, IoRoundTrip, ::testing::Range(0, 9),
                         family_name);

} // namespace
} // namespace oms
