#include "oms/graph/generators.hpp"

#include <gtest/gtest.h>

#include <queue>

namespace oms {
namespace {

/// Number of nodes reachable from 0.
NodeId reachable_from_zero(const CsrGraph& g) {
  std::vector<bool> visited(g.num_nodes(), false);
  std::queue<NodeId> queue;
  queue.push(0);
  visited[0] = true;
  NodeId count = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    ++count;
    for (const NodeId v : g.neighbors(u)) {
      if (!visited[v]) {
        visited[v] = true;
        queue.push(v);
      }
    }
  }
  return count;
}

TEST(Grid2d, EdgeCountFormula) {
  const CsrGraph g = gen::grid_2d(5, 7);
  EXPECT_EQ(g.num_nodes(), 35u);
  // (rows-1)*cols vertical + rows*(cols-1) horizontal.
  EXPECT_EQ(g.num_edges(), 4u * 7u + 5u * 6u);
  g.validate();
}

TEST(Grid2d, PeriodicWrapsBothAxes) {
  const CsrGraph g = gen::grid_2d(4, 4, /*periodic=*/true);
  // Torus: every node has degree 4.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.degree(u), 4u);
  }
}

TEST(Grid2d, IsConnected) {
  const CsrGraph g = gen::grid_2d(9, 11);
  EXPECT_EQ(reachable_from_zero(g), g.num_nodes());
}

TEST(Grid3d, EdgeCountFormula) {
  const CsrGraph g = gen::grid_3d(3, 4, 5);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_EQ(g.num_edges(), 2u * 4 * 5 + 3u * 3 * 5 + 3u * 4 * 4);
  g.validate();
}

TEST(Grid3d, InteriorDegreeIsSix) {
  const CsrGraph g = gen::grid_3d(5, 5, 5);
  EXPECT_EQ(g.max_degree(), 6u);
}

TEST(RandomGeometric, Deterministic) {
  const CsrGraph a = gen::random_geometric(2000, 42);
  const CsrGraph b = gen::random_geometric(2000, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const CsrGraph c = gen::random_geometric(2000, 43);
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(RandomGeometric, PaperRadiusYieldsConnectedishGraph) {
  // The 0.55*sqrt(ln n / n) radius is chosen to be just above the
  // connectivity threshold; the giant component should dominate.
  const CsrGraph g = gen::random_geometric(4000, 7);
  EXPECT_GT(reachable_from_zero(g), g.num_nodes() * 9 / 10);
}

TEST(RandomGeometric, ExplicitRadiusControlsDensity) {
  const CsrGraph sparse = gen::random_geometric(2000, 1, 0.02);
  const CsrGraph dense = gen::random_geometric(2000, 1, 0.06);
  EXPECT_GT(dense.num_edges(), sparse.num_edges() * 4);
}

TEST(Delaunay, PlanarityBound) {
  // Any planar triangulation satisfies m <= 3n - 6.
  for (const NodeId n : {100u, 1000u, 5000u}) {
    const CsrGraph g = gen::delaunay(n, 11);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_LE(g.num_edges(), 3u * n - 6u);
    // A Delaunay triangulation of generic points is near-maximal planar:
    // substantially more edges than a spanning tree.
    EXPECT_GT(g.num_edges(), 2u * n);
    g.validate();
  }
}

TEST(Delaunay, ConnectedAndDeterministic) {
  const CsrGraph a = gen::delaunay(3000, 5);
  EXPECT_EQ(reachable_from_zero(a), a.num_nodes());
  const CsrGraph b = gen::delaunay(3000, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(Delaunay, AverageDegreeNearSix) {
  // Euler: a Delaunay triangulation has ~3n edges, so average degree ~6.
  const CsrGraph g = gen::delaunay(8000, 3);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_nodes());
  EXPECT_GT(avg, 5.5);
  EXPECT_LT(avg, 6.01);
}

TEST(BarabasiAlbert, EdgeCountMatchesAttachment) {
  const NodeId n = 5000;
  const NodeId d = 4;
  const CsrGraph g = gen::barabasi_albert(n, d, 9);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique C(d+1, 2) plus d edges per arriving node.
  const EdgeIndex expected = static_cast<EdgeIndex>(d) * (d + 1) / 2 +
                             static_cast<EdgeIndex>(n - d - 1) * d;
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  const CsrGraph g = gen::barabasi_albert(20000, 4, 1);
  // Power-law-ish: hub degree far above the average degree of ~8.
  EXPECT_GT(g.max_degree(), 100u);
  EXPECT_EQ(reachable_from_zero(g), g.num_nodes());
}

TEST(Rmat, SizeAndSkew) {
  const CsrGraph g = gen::rmat(12, 8, 77);
  EXPECT_EQ(g.num_nodes(), 4096u);
  // Duplicates merge, so fewer than 8n distinct edges — but most survive.
  EXPECT_GT(g.num_edges(), 4096u * 4);
  EXPECT_LE(g.num_edges(), 4096u * 8);
  EXPECT_GT(g.max_degree(), 64u); // heavy head of the distribution
  g.validate();
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const CsrGraph g = gen::erdos_renyi(1000, 5000, 3);
  EXPECT_EQ(g.num_nodes(), 1000u);
  EXPECT_EQ(g.num_edges(), 5000u);
  g.validate();
}

TEST(WattsStrogatz, DegreeSumPreservedByRewiring) {
  const NodeId n = 2000;
  const NodeId k = 4;
  const CsrGraph g = gen::watts_strogatz(n, k, 0.2, 13);
  EXPECT_EQ(g.num_nodes(), n);
  // Rewiring never creates or destroys edges (up to the rare merge skip).
  EXPECT_GE(g.num_edges(), static_cast<EdgeIndex>(n) * k * 95 / 100);
  EXPECT_LE(g.num_edges(), static_cast<EdgeIndex>(n) * k);
}

TEST(WattsStrogatz, BetaZeroIsRingLattice) {
  const CsrGraph g = gen::watts_strogatz(100, 3, 0.0, 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.degree(u), 6u);
  }
}

TEST(RoadNetwork, SparseAndLowDegree) {
  const CsrGraph g = gen::road_network(60, 60, 21);
  EXPECT_EQ(g.num_nodes(), 3600u);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_nodes());
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 4.5);
  EXPECT_LE(g.max_degree(), 8u);
  g.validate();
}

} // namespace
} // namespace oms
