#include "oms/graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/util/io_error.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

class IoTest : public ::testing::Test {
protected:
  std::string temp_path(const char* name) {
    return ::testing::TempDir() + "/oms_io_" + name;
  }
};

void expect_graphs_equal(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    EXPECT_EQ(a.node_weight(u), b.node_weight(u));
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]);
      EXPECT_EQ(a.incident_weights(u)[i], b.incident_weights(u)[i]);
    }
  }
}

TEST_F(IoTest, MetisRoundTripUnitWeights) {
  const CsrGraph original = gen::grid_2d(13, 17);
  const std::string path = temp_path("unit.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisRoundTripEdgeWeights) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 5);
  builder.add_edge(1, 2, 7);
  builder.add_edge(2, 3, 2);
  const CsrGraph original = std::move(builder).build();
  const std::string path = temp_path("ew.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisRoundTripNodeAndEdgeWeights) {
  GraphBuilder builder(5);
  builder.set_node_weight(0, 3);
  builder.set_node_weight(4, 9);
  builder.add_edge(0, 1, 2);
  builder.add_edge(0, 4, 11);
  builder.add_edge(3, 4);
  const CsrGraph original = std::move(builder).build();
  const std::string path = temp_path("nwew.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisSkipsCommentLines) {
  const std::string path = temp_path("comments.graph");
  {
    std::ofstream out(path);
    out << "% a comment\n3 2\n% another\n2\n1 3\n2\n";
  }
  const CsrGraph g = read_metis(path);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisIsolatedTrailingNodes) {
  const std::string path = temp_path("isolated.graph");
  {
    std::ofstream out(path);
    out << "4 1\n2\n1\n"; // nodes 3 and 4 have no lines
  }
  const CsrGraph g = read_metis(path);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisIsolatedMidStreamNodesKeepTheirSlot) {
  // Regression: an isolated node is written as an *empty* line; the reader
  // must consume it instead of skipping it, or every later adjacency list
  // shifts onto the wrong node.
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(3, 4); // node 2 is isolated, in the middle of the file
  const CsrGraph original = std::move(builder).build();
  const std::string path = temp_path("midiso.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  EXPECT_EQ(loaded.degree(2), 0u);
  EXPECT_EQ(loaded.degree(3), 1u);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// IoError channel: malformed input raises a recoverable exception carrying
// the file position — never an assertion abort (finishes the migration the
// streaming reader started).
// ---------------------------------------------------------------------------

TEST_F(IoTest, MetisHeaderMismatchThrows) {
  const std::string path = temp_path("badheader.graph");
  {
    std::ofstream out(path);
    out << "3 5\n2\n1 3\n2\n"; // claims 5 edges, has 2
  }
  EXPECT_THROW((void)read_metis(path), IoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisMalformedHeaderThrows) {
  const std::string path = temp_path("badheadertok.graph");
  // Includes the multi-constraint forms (fmt hundreds digit, ncon != 1) and
  // trailing junk — the same contract the streaming reader enforces, so one
  // file cannot parse cleanly on one path and corrupt on the other.
  for (const char* header : {"abc def\n", "5\n", "5 x\n", "-3 1\n", "4 2 110\n",
                             "4 2 10 2\n", "4 2 11 3\n", "5 2 0 1 9\n"}) {
    {
      std::ofstream out(path);
      out << header;
    }
    EXPECT_THROW((void)read_metis(path), IoError) << header;
  }
  // ncon == 1 stays accepted (it's the only workable value).
  {
    std::ofstream out(path);
    out << "3 2 10 1\n1 2\n2 1 3\n3 2\n";
  }
  const CsrGraph g = read_metis(path);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.node_weight(1), 2);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisNeighborOutOfRangeThrowsWithPosition) {
  const std::string path = temp_path("range.graph");
  {
    std::ofstream out(path);
    out << "% comment\n2 1\n2\n9\n"; // node 2 references neighbor 9 > n
  }
  try {
    (void)read_metis(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":4:"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisMissingEdgeWeightThrows) {
  const std::string path = temp_path("noweight.graph");
  {
    std::ofstream out(path);
    out << "2 1 1\n2 5\n1\n"; // fmt=1 but node 2's weight is absent
  }
  EXPECT_THROW((void)read_metis(path), IoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisNonNumericTokenThrows) {
  const std::string path = temp_path("garbage.graph");
  {
    std::ofstream out(path);
    out << "2 1\n2\nfoo\n";
  }
  EXPECT_THROW((void)read_metis(path), IoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRoundTrip) {
  const CsrGraph original = gen::barabasi_albert(500, 3, 4);
  const std::string path = temp_path("bin.graph");
  write_binary(original, path);
  const CsrGraph loaded = read_binary(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  const std::string path = temp_path("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t junk = 0xDEAD;
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
  }
  EXPECT_THROW((void)read_binary(path), IoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryTruncatedFileThrows) {
  const CsrGraph original = gen::barabasi_albert(200, 3, 4);
  const std::string full = temp_path("full.bin");
  write_binary(original, full);
  std::ifstream in(full, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Cut at several depths: inside the header, inside xadj, inside the last
  // payload array. Every cut must raise IoError, never abort or misread.
  const std::string path = temp_path("truncated.bin");
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{20}, bytes.size() / 2, bytes.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    EXPECT_THROW((void)read_binary(path), IoError) << "keep=" << keep;
  }
  std::remove(full.c_str());
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryImplausibleHeaderSizesThrow) {
  // A header advertising astronomically many arcs must be rejected before
  // any allocation happens (IoError, not bad_alloc).
  const std::string path = temp_path("implausible.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t magic = 0x4f4d5347'52415032ULL; // current v2 magic
    const std::uint64_t n = 4;
    const std::uint64_t arcs = std::uint64_t{1} << 60;
    out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    out.write(reinterpret_cast<const char*>(&arcs), sizeof arcs);
  }
  EXPECT_THROW((void)read_binary(path), IoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsUnchecksummedV1Files) {
  // A v1-era cache (valid layout, old magic, no CRC) must be refused with a
  // clear "regenerate" error, never silently parsed without validation.
  const std::string path = temp_path("v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t magic = 0x4f4d5347'52415031ULL; // "OMSGRAP1"
    const std::uint64_t n = 1;
    const std::uint64_t arcs = 0;
    const EdgeIndex xadj[2] = {0, 0};
    const NodeWeight vwgt[1] = {1};
    out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    out.write(reinterpret_cast<const char*>(&arcs), sizeof arcs);
    out.write(reinterpret_cast<const char*>(xadj), sizeof xadj);
    out.write(reinterpret_cast<const char*>(vwgt), sizeof vwgt);
  }
  try {
    (void)read_binary(path);
    FAIL() << "v1 file accepted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST_F(IoTest, BinarySingleFlippedByteThrows) {
  // Flip one byte at a time across the whole file (header, every payload
  // array, the checksum itself): the CRC must catch each flip. This is the
  // defect class the strict length check alone cannot see.
  const CsrGraph original = gen::barabasi_albert(60, 2, 4);
  const std::string full = temp_path("crc_full.bin");
  write_binary(original, full);
  std::ifstream in(full, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  const std::string path = temp_path("crc_flip.bin");
  // Every 37th byte keeps the sweep fast while still hitting each section.
  for (std::size_t at = 0; at < bytes.size(); at += 37) {
    std::vector<char> corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    EXPECT_THROW((void)read_binary(path), IoError) << "flipped byte " << at;
  }
  std::remove(full.c_str());
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryTrailingGarbageThrows) {
  // Appended bytes (concatenated caches, partial overwrite of a longer file)
  // fail the strict length check even though the checksummed prefix is fine.
  const CsrGraph original = gen::barabasi_albert(60, 2, 4);
  const std::string path = temp_path("trailing.bin");
  write_binary(original, path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_THROW((void)read_binary(path), IoError);
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_metis("/nonexistent/surely/missing.graph"), IoError);
  EXPECT_THROW((void)read_binary("/nonexistent/surely/missing.bin"), IoError);
}

} // namespace
} // namespace oms
