#include "oms/graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

class IoTest : public ::testing::Test {
protected:
  std::string temp_path(const char* name) {
    return ::testing::TempDir() + "/oms_io_" + name;
  }
};

void expect_graphs_equal(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    EXPECT_EQ(a.node_weight(u), b.node_weight(u));
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]);
      EXPECT_EQ(a.incident_weights(u)[i], b.incident_weights(u)[i]);
    }
  }
}

TEST_F(IoTest, MetisRoundTripUnitWeights) {
  const CsrGraph original = gen::grid_2d(13, 17);
  const std::string path = temp_path("unit.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisRoundTripEdgeWeights) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 5);
  builder.add_edge(1, 2, 7);
  builder.add_edge(2, 3, 2);
  const CsrGraph original = std::move(builder).build();
  const std::string path = temp_path("ew.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisRoundTripNodeAndEdgeWeights) {
  GraphBuilder builder(5);
  builder.set_node_weight(0, 3);
  builder.set_node_weight(4, 9);
  builder.add_edge(0, 1, 2);
  builder.add_edge(0, 4, 11);
  builder.add_edge(3, 4);
  const CsrGraph original = std::move(builder).build();
  const std::string path = temp_path("nwew.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisSkipsCommentLines) {
  const std::string path = temp_path("comments.graph");
  {
    std::ofstream out(path);
    out << "% a comment\n3 2\n% another\n2\n1 3\n2\n";
  }
  const CsrGraph g = read_metis(path);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisIsolatedTrailingNodes) {
  const std::string path = temp_path("isolated.graph");
  {
    std::ofstream out(path);
    out << "4 1\n2\n1\n"; // nodes 3 and 4 have no lines
  }
  const CsrGraph g = read_metis(path);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisIsolatedMidStreamNodesKeepTheirSlot) {
  // Regression: an isolated node is written as an *empty* line; the reader
  // must consume it instead of skipping it, or every later adjacency list
  // shifts onto the wrong node.
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(3, 4); // node 2 is isolated, in the middle of the file
  const CsrGraph original = std::move(builder).build();
  const std::string path = temp_path("midiso.graph");
  write_metis(original, path);
  const CsrGraph loaded = read_metis(path);
  EXPECT_EQ(loaded.degree(2), 0u);
  EXPECT_EQ(loaded.degree(3), 1u);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, MetisHeaderMismatchDies) {
  const std::string path = temp_path("badheader.graph");
  {
    std::ofstream out(path);
    out << "3 5\n2\n1 3\n2\n"; // claims 5 edges, has 2
  }
  EXPECT_DEATH((void)read_metis(path), "disagrees");
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRoundTrip) {
  const CsrGraph original = gen::barabasi_albert(500, 3, 4);
  const std::string path = temp_path("bin.graph");
  write_binary(original, path);
  const CsrGraph loaded = read_binary(path);
  expect_graphs_equal(original, loaded);
  std::remove(path.c_str());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  const std::string path = temp_path("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t junk = 0xDEAD;
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
  }
  EXPECT_DEATH((void)read_binary(path), "magic");
  std::remove(path.c_str());
}

TEST_F(IoTest, MissingFileDies) {
  EXPECT_DEATH((void)read_metis("/nonexistent/surely/missing.graph"), "cannot open");
}

} // namespace
} // namespace oms
