/// \file test_service_hardening.cpp
/// \brief Production armor of the serve loops: the connection cap sheds with
///        a typed kOverloaded verdict, idle deadlines reclaim silent peers
///        (but never slow-but-alive ones), a client hanging up mid-reply
///        costs the connection and not the process (the SIGPIPE regression),
///        graceful drain answers in-flight requests and refuses new work
///        with kShuttingDown, the socket liveness probe refuses to steal a
///        live daemon's socket, and a connection-churn stress run (the TSan
///        leg runs this) leaves the service.conns_* metrics reconciled.
#include "oms/oms.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "oms/graph/generators.hpp"
#include "oms/stream/checkpoint.hpp"

namespace oms::service {
namespace {

[[nodiscard]] PartitionService make_service(BlockId k = 8) {
  PartitionRequest req;
  req.algo = "oms";
  req.k = k;
  return PartitionService(
      Partitioner().partition(gen::barabasi_albert(1500, 4, 13), req));
}

/// Client-side frame write with MSG_NOSIGNAL, so a daemon that already
/// closed the connection can never SIGPIPE the test process.
[[nodiscard]] bool send_frame(int fd, const std::vector<char>& body) {
  const std::vector<char> framed = frame(body);
  const char* cur = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t put = ::send(fd, cur, left, MSG_NOSIGNAL);
    if (put <= 0) {
      return false;
    }
    cur += put;
    left -= static_cast<std::size_t>(put);
  }
  return true;
}

[[nodiscard]] bool read_exactly(int fd, void* out, std::size_t bytes) {
  auto* cur = static_cast<char*>(out);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, cur, bytes);
    if (got <= 0) {
      return false;
    }
    cur += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Read one framed reply body; empty vector on EOF / torn connection.
[[nodiscard]] std::vector<char> read_reply(int fd) {
  std::uint32_t len = 0;
  if (!read_exactly(fd, &len, sizeof len)) {
    return {};
  }
  std::vector<char> body(len);
  if (len > 0 && !read_exactly(fd, body.data(), len)) {
    return {};
  }
  return body;
}

[[nodiscard]] Status status_of(const std::vector<char>& body) {
  CheckpointReader r(body);
  return static_cast<Status>(r.get_u32());
}

[[nodiscard]] int connect_to(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "could not connect to " << socket_path;
  ::close(fd);
  return -1;
}

/// Shut a socket daemon down, riding out transient kOverloaded sheds while
/// freed worker slots are still being reaped. Returns the number of
/// connections made, so metrics-reconciliation tests can count them.
int shutdown_daemon(const std::string& path) {
  for (int attempt = 1; attempt <= 100; ++attempt) {
    const int fd = connect_to(path);
    if (fd < 0) {
      return attempt; // connect_to already reported the failure
    }
    std::vector<char> reply;
    if (send_frame(fd, encode_shutdown())) {
      reply = read_reply(fd);
    }
    ::close(fd);
    if (!reply.empty() && status_of(reply) == Status::kOk) {
      return attempt;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ADD_FAILURE() << "could not shut the daemon down at " << path;
  return 100;
}

/// Every test leaves the process-global drain latch and metrics hook clean,
/// so a failing case cannot poison its neighbors.
class ServiceHardeningTest : public ::testing::Test {
protected:
  void SetUp() override { reset_drain(); }
  void TearDown() override {
    reset_drain();
    telemetry::MetricsRegistry::disarm();
  }
};

// ---------------------------------------------------------------------------
// Bounded connections: admission control past max_conns.
// ---------------------------------------------------------------------------

TEST_F(ServiceHardeningTest, ConnectionCapShedsTypedOverloadedVerdict) {
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry::arm(registry);
  const PartitionService service = make_service();
  const std::string path = ::testing::TempDir() + "/oms_hard_overload.sock";
  ServeOptions options;
  options.max_conns = 2;
  std::thread server([&] { serve_unix_socket(service, path, options); });

  // Two holders fill both slots; one round trip each proves their workers
  // are live (not merely queued in the listen backlog).
  int holders[2];
  for (int& holder : holders) {
    holder = connect_to(path);
    ASSERT_GE(holder, 0);
    ASSERT_TRUE(send_frame(holder, encode_where(1)));
    ASSERT_EQ(status_of(read_reply(holder)), Status::kOk);
  }

  // The third connection gets one unsolicited kOverloaded verdict, then EOF
  // — a typed shed, not a silent reset.
  const int third = connect_to(path);
  ASSERT_GE(third, 0);
  EXPECT_EQ(status_of(read_reply(third)), Status::kOverloaded);
  EXPECT_TRUE(read_reply(third).empty()) << "a shed connection must close";
  ::close(third);

  // Freeing a slot readmits. ServiceClient obeys the kOverloaded verdict
  // with backoff, so it absorbs the reaping latency without test sleeps.
  ::close(holders[0]);
  ClientConfig config;
  config.max_attempts = 8;
  config.backoff_base_ms = 20;
  ServiceClient client(path, config);
  EXPECT_EQ(client.where(5),
            static_cast<std::uint32_t>(service.artifact().where(5)));
  client.disconnect();
  ::close(holders[1]);

  (void)shutdown_daemon(path);
  server.join();

  const telemetry::MetricsSnapshot snap = registry.scrape();
  EXPECT_GE(snap.counter(telemetry::Counter::kServiceConnsRejected), 1u);
  EXPECT_GE(snap.counter(telemetry::Counter::kServiceConnsAccepted), 3u);
  EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceConnsActive), 0u);
}

// ---------------------------------------------------------------------------
// SIGPIPE regression: a peer hanging up mid-reply must not kill the process.
// ---------------------------------------------------------------------------

TEST_F(ServiceHardeningTest, ClientHangupBeforeReadingTheReplyCostsTheSession) {
  const PartitionService service = make_service();
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ASSERT_TRUE(send_frame(pair[0], encode_where(2)));
  ::close(pair[0]); // hang up before the reply is written
  // Without MSG_NOSIGNAL on the reply write this raises SIGPIPE and kills
  // the process; hardened, it is one EPIPE and a clean end of session.
  EXPECT_FALSE(serve_stream(service, pair[1], pair[1]));
  ::close(pair[1]);
}

// ---------------------------------------------------------------------------
// Idle deadlines: silent peers are reclaimed, slow-but-alive ones are not.
// ---------------------------------------------------------------------------

TEST_F(ServiceHardeningTest, IdleDeadlineReclaimsSilentPeersOnly) {
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry::arm(registry);
  const PartitionService service = make_service();
  SessionOptions options;
  options.idle_timeout_ms = 50;

  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  // A peer that never sends a byte times out at the frame boundary...
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(serve_stream(service, in_pipe[0], out_pipe[1], options));
  // ...and one that stalls mid-prefix times out too (no progress resets).
  ASSERT_EQ(::write(in_pipe[1], "ab", 2), 2);
  EXPECT_FALSE(serve_stream(service, in_pipe[0], out_pipe[1], options));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 2 * options.idle_timeout_ms - 10);
  EXPECT_EQ(registry.scrape().counter(telemetry::Counter::kServiceTimeouts),
            2u);

  // A slow-but-alive peer never trips the per-progress deadline: one byte
  // every 10 ms stays under the 50 ms idle budget the whole way.
  std::thread dribble([&] {
    const std::vector<char> framed = frame(encode_where(3));
    for (const char byte : framed) {
      EXPECT_EQ(::write(in_pipe[1], &byte, 1), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::close(in_pipe[1]);
  });
  EXPECT_FALSE(serve_stream(service, in_pipe[0], out_pipe[1], options));
  dribble.join();
  const std::vector<char> reply = read_reply(out_pipe[0]);
  ASSERT_EQ(status_of(reply), Status::kOk);
  {
    CheckpointReader r(reply);
    (void)r.get_u32();
    EXPECT_EQ(r.get_u32(),
              static_cast<std::uint32_t>(service.artifact().where(3)));
  }
  EXPECT_EQ(registry.scrape().counter(telemetry::Counter::kServiceTimeouts),
            2u)
      << "the dribbling peer must not count as a timeout";
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);
}

// ---------------------------------------------------------------------------
// Graceful drain: in-flight work is answered, new work gets kShuttingDown.
// ---------------------------------------------------------------------------

TEST_F(ServiceHardeningTest, DrainAnswersInFlightRequestsAndShedsNewOnes) {
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry::arm(registry);
  const PartitionService service = make_service();
  const std::string path = ::testing::TempDir() + "/oms_hard_drain.sock";
  std::thread server([&] { serve_unix_socket(service, path); });

  // Session A is established and idle between frames.
  const int idle_session = connect_to(path);
  ASSERT_GE(idle_session, 0);
  ASSERT_TRUE(send_frame(idle_session, encode_where(1)));
  ASSERT_EQ(status_of(read_reply(idle_session)), Status::kOk);

  // Session B has a frame in flight: the full prefix plus 4 of 12 body
  // bytes, then a stall. Give its worker time to start reading the body —
  // that parks the session past the drain decision point (several poll
  // slices of slack; the worker only needs to be scheduled once).
  const int inflight_session = connect_to(path);
  ASSERT_GE(inflight_session, 0);
  const std::vector<char> inflight_frame = frame(encode_where(42));
  ASSERT_EQ(::send(inflight_session, inflight_frame.data(), 8, MSG_NOSIGNAL),
            8);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  request_drain(); // what oms_serve's SIGTERM handler calls

  // The idle session gets one unsolicited kShuttingDown at its next frame
  // boundary, then EOF.
  EXPECT_EQ(status_of(read_reply(idle_session)), Status::kShuttingDown);
  EXPECT_TRUE(read_reply(idle_session).empty());
  ::close(idle_session);

  // A brand-new connection during the drain is accepted only to be shed
  // with the typed verdict; ServiceClient surfaces it without retrying.
  ClientConfig config;
  config.backoff_base_ms = 1;
  ServiceClient late_client(path, config);
  const ClientReply verdict = late_client.request(encode_where(5));
  EXPECT_EQ(verdict.status, Status::kShuttingDown);
  EXPECT_EQ(late_client.connects(), 1) << "kShuttingDown must not be retried";

  // The in-flight frame is finished and answered — then that session too is
  // drained at its next frame boundary.
  ASSERT_EQ(::send(inflight_session, inflight_frame.data() + 8,
                   inflight_frame.size() - 8, MSG_NOSIGNAL),
            static_cast<ssize_t>(inflight_frame.size() - 8));
  const std::vector<char> answered = read_reply(inflight_session);
  ASSERT_EQ(status_of(answered), Status::kOk);
  {
    CheckpointReader r(answered);
    (void)r.get_u32();
    EXPECT_EQ(r.get_u32(),
              static_cast<std::uint32_t>(service.artifact().where(42)));
  }
  EXPECT_EQ(status_of(read_reply(inflight_session)), Status::kShuttingDown);
  ::close(inflight_session);

  // With every session drained the serve loop returns and unbinds.
  server.join();
  const telemetry::MetricsSnapshot snap = registry.scrape();
  EXPECT_GE(snap.counter(telemetry::Counter::kServiceDrains), 3u);
  EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceConnsActive), 0u);
}

// ---------------------------------------------------------------------------
// Socket liveness probe: never steal a live daemon's socket, always replace
// a genuinely stale one.
// ---------------------------------------------------------------------------

TEST_F(ServiceHardeningTest, LiveSocketIsRefusedStaleSocketIsReplaced) {
  const PartitionService service = make_service();
  const std::string path = ::testing::TempDir() + "/oms_hard_probe.sock";
  std::thread server([&] { serve_unix_socket(service, path); });
  const int probe = connect_to(path); // daemon is up and accepting
  ASSERT_GE(probe, 0);
  ::close(probe);

  // A second daemon on the same path must refuse instead of unlinking the
  // live socket out from under the first.
  EXPECT_THROW(serve_unix_socket(service, path), IoError);
  (void)shutdown_daemon(path);
  server.join();

  // A stale socket file (bound once, owner gone) is silently replaced.
  const std::string stale_path = ::testing::TempDir() + "/oms_hard_stale.sock";
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, stale_path.c_str(), stale_path.size() + 1);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ::close(stale); // the file stays behind; nobody will ever accept on it
  std::thread revived([&] { serve_unix_socket(service, stale_path); });
  const int fd = connect_to(stale_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_frame(fd, encode_where(9)));
  EXPECT_EQ(status_of(read_reply(fd)), Status::kOk);
  ::close(fd);
  (void)shutdown_daemon(stale_path);
  revived.join();
}

// ---------------------------------------------------------------------------
// Connection churn under concurrency (the TSan leg runs this): misbehaving
// clients of every flavor, then the books must balance.
// ---------------------------------------------------------------------------

TEST_F(ServiceHardeningTest, ConnectionChurnLeavesTheMetricsReconciled) {
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry::arm(registry);
  const PartitionService service = make_service();
  const std::string path = ::testing::TempDir() + "/oms_hard_churn.sock";
  ServeOptions options;
  options.max_conns = 16; // far above the client count: nothing gets shed
  std::thread server([&] { serve_unix_socket(service, path, options); });

  constexpr int kClients = 6;
  constexpr int kRounds = 20;
  const std::uint64_t items = service.artifact().assignment.size();
  std::vector<std::thread> churn;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    churn.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const int fd = connect_to(path);
        if (fd < 0) {
          ++failures[static_cast<std::size_t>(c)];
          return;
        }
        const std::uint64_t id =
            static_cast<std::uint64_t>(c * kRounds + round) % items;
        switch (round % 4) {
          case 0: { // well-behaved request: correct answer or a typed shed
            if (!send_frame(fd, encode_where(id))) {
              break; // the daemon shed and closed first: acceptable churn
            }
            const std::vector<char> reply = read_reply(fd);
            if (reply.empty() || status_of(reply) == Status::kOverloaded) {
              break; // clean close / typed shed under churn: acceptable
            }
            if (status_of(reply) != Status::kOk) {
              ++failures[static_cast<std::size_t>(c)];
              break;
            }
            CheckpointReader r(reply);
            (void)r.get_u32();
            if (r.get_u32() !=
                static_cast<std::uint32_t>(service.artifact().where(id))) {
              ++failures[static_cast<std::size_t>(c)];
            }
            break;
          }
          case 1: { // half a length prefix, then hang up
            (void)::send(fd, "ab", 2, MSG_NOSIGNAL);
            break;
          }
          case 2: // connect and hang up immediately
            break;
          case 3: { // send a request, never read the reply (SIGPIPE bait)
            (void)send_frame(fd, encode_where(id));
            break;
          }
          default:
            break;
        }
        ::close(fd);
      }
    });
  }
  for (std::thread& thread : churn) {
    thread.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  // After all that abuse the daemon must still answer a well-behaved client.
  ServiceClient client(path);
  EXPECT_EQ(client.where(7),
            static_cast<std::uint32_t>(service.artifact().where(7)));
  EXPECT_GT(client.stats().requests_served, 0u);
  const int client_conns = client.connects();
  client.disconnect();
  const int shutdown_conns = shutdown_daemon(path);
  server.join();

  // The books balance. Every admission verdict is counted, so accepted +
  // rejected never exceeds the connections the clients made; the only leak
  // allowed is a connection its client closed while still queued in the
  // listen backlog (the kernel may abort those before accept sees them) —
  // and only behaviors 1-3 close early, bounding that slack. No deadline is
  // configured, so the timeout counter must stay zero; workers still alive
  // when the kShutdown stop flag flips drain their session with a counted
  // kShuttingDown, bounded by the connection cap. Every slot was reaped.
  const std::uint64_t total_conns = static_cast<std::uint64_t>(
      kClients * kRounds + client_conns + shutdown_conns);
  constexpr std::uint64_t kEarlyCloseConns = kClients * kRounds * 3 / 4;
  const telemetry::MetricsSnapshot snap = registry.scrape();
  const std::uint64_t verdicts =
      snap.counter(telemetry::Counter::kServiceConnsAccepted) +
      snap.counter(telemetry::Counter::kServiceConnsRejected);
  EXPECT_LE(verdicts, total_conns);
  EXPECT_GE(verdicts, total_conns - kEarlyCloseConns);
  EXPECT_EQ(snap.counter(telemetry::Counter::kServiceTimeouts), 0u);
  EXPECT_LE(snap.counter(telemetry::Counter::kServiceDrains),
            static_cast<std::uint64_t>(options.max_conns));
  EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceConnsActive), 0u);
}

} // namespace
} // namespace oms::service
