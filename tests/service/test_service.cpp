/// \file test_service.cpp
/// \brief The transport layer of oms_serve: frame loops over real fds, the
///        oversized-frame close, a concurrent multi-client stress session
///        over a Unix socket (the TSan leg runs this), and the
///        snapshot -> restore -> identical-answers round trip.
#include "oms/oms.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "oms/graph/generators.hpp"
#include "oms/stream/checkpoint.hpp"

namespace oms::service {
namespace {

[[nodiscard]] PartitionService make_service(BlockId k = 8) {
  PartitionRequest req;
  req.algo = "oms";
  req.k = k;
  return PartitionService(
      Partitioner().partition(gen::barabasi_albert(2000, 4, 13), req));
}

void write_frames(int fd, const std::vector<std::vector<char>>& bodies) {
  for (const auto& body : bodies) {
    const std::vector<char> framed = frame(body);
    ASSERT_EQ(::write(fd, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }
}

[[nodiscard]] bool read_exactly(int fd, void* out, std::size_t bytes) {
  auto* cur = static_cast<char*>(out);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, cur, bytes);
    if (got <= 0) {
      return false;
    }
    cur += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Read one framed reply body; empty vector on EOF.
[[nodiscard]] std::vector<char> read_reply(int fd) {
  std::uint32_t len = 0;
  if (!read_exactly(fd, &len, sizeof len)) {
    return {};
  }
  std::vector<char> body(len);
  if (len > 0 && !read_exactly(fd, body.data(), len)) {
    return {};
  }
  return body;
}

[[nodiscard]] Status status_of(const std::vector<char>& body) {
  CheckpointReader r(body);
  return static_cast<Status>(r.get_u32());
}

// ---------------------------------------------------------------------------
// serve_stream over pipes (the --stdio transport).
// ---------------------------------------------------------------------------

TEST(ServeStream, SessionWithShutdown) {
  const PartitionService service = make_service();
  int in_pipe[2];  // test -> server
  int out_pipe[2]; // server -> test
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  write_frames(in_pipe[1], {encode_where(5), encode_stats(), encode_shutdown()});
  std::thread server([&] {
    EXPECT_TRUE(serve_stream(service, in_pipe[0], out_pipe[1]));
    ::close(out_pipe[1]);
  });

  const std::vector<char> where = read_reply(out_pipe[0]);
  EXPECT_EQ(status_of(where), Status::kOk);
  {
    CheckpointReader r(where);
    (void)r.get_u32();
    EXPECT_EQ(r.get_u32(),
              static_cast<std::uint32_t>(service.artifact().where(5)));
  }
  EXPECT_EQ(status_of(read_reply(out_pipe[0])), Status::kOk); // stats
  EXPECT_EQ(status_of(read_reply(out_pipe[0])), Status::kOk); // shutdown ack
  server.join();
  ::close(in_pipe[0]);
  ::close(in_pipe[1]);
  ::close(out_pipe[0]);
}

TEST(ServeStream, ClientHangupEndsTheSessionWithoutShutdown) {
  const PartitionService service = make_service();
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  write_frames(in_pipe[1], {encode_where(1)});
  ::close(in_pipe[1]); // EOF after one frame
  EXPECT_FALSE(serve_stream(service, in_pipe[0], out_pipe[1]));
  EXPECT_EQ(status_of(read_reply(out_pipe[0])), Status::kOk);
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);
}

TEST(ServeStream, TruncatedFrameEndsTheSessionCleanly) {
  const PartitionService service = make_service();
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  // Declare 12 body bytes, deliver 3, hang up.
  const std::uint32_t len = 12;
  ASSERT_EQ(::write(in_pipe[1], &len, sizeof len), 4);
  ASSERT_EQ(::write(in_pipe[1], "abc", 3), 3);
  ::close(in_pipe[1]);
  EXPECT_FALSE(serve_stream(service, in_pipe[0], out_pipe[1]));
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);
}

TEST(ServeStream, OversizedFrameGetsTypedErrorThenClose) {
  const PartitionService service = make_service();
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_EQ(::write(in_pipe[1], &huge, sizeof huge), 4);
  std::thread server([&] {
    EXPECT_FALSE(serve_stream(service, in_pipe[0], out_pipe[1]));
    ::close(out_pipe[1]);
  });
  const std::vector<char> reply = read_reply(out_pipe[0]);
  EXPECT_EQ(status_of(reply), Status::kTooLarge);
  EXPECT_TRUE(read_reply(out_pipe[0]).empty()) << "connection must close";
  server.join();
  ::close(in_pipe[0]);
  ::close(in_pipe[1]);
  ::close(out_pipe[0]);
}

// ---------------------------------------------------------------------------
// Unix socket transport: concurrent clients against one immutable artifact.
// ---------------------------------------------------------------------------

[[nodiscard]] int connect_to(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  // The server binds asynchronously; retry briefly until it listens.
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "could not connect to " << socket_path;
  ::close(fd);
  return -1;
}

TEST(ServeSocket, ConcurrentClientsGetConsistentAnswers) {
  const PartitionService service = make_service();
  const std::string socket_path = ::testing::TempDir() + "/oms_service_stress.sock";
  std::thread server([&] { serve_unix_socket(service, socket_path); });

  constexpr int kClients = 4;
  constexpr int kRequests = 200;
  const std::uint64_t items = service.artifact().assignment.size();
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_to(socket_path);
      if (fd < 0) {
        failures[static_cast<std::size_t>(c)] = kRequests;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        // Mix valid lookups, out-of-range ids and malformed frames: every
        // client must get its own typed replies back, in order.
        const std::uint64_t v = static_cast<std::uint64_t>(c * kRequests + i);
        std::vector<char> body;
        Status expected = Status::kOk;
        if (i % 31 == 7) {
          body = encode_where(items + v); // out of range
          expected = Status::kOutOfRange;
        } else if (i % 31 == 19) {
          body = {'\x01'}; // truncated opcode
          expected = Status::kBadFrame;
        } else {
          body = encode_where(v % items);
        }
        const std::vector<char> framed = frame(body);
        if (::write(fd, framed.data(), framed.size()) !=
            static_cast<ssize_t>(framed.size())) {
          ++failures[static_cast<std::size_t>(c)];
          break;
        }
        const std::vector<char> reply = read_reply(fd);
        if (reply.empty() || status_of(reply) != expected) {
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        if (expected == Status::kOk) {
          CheckpointReader r(reply);
          (void)r.get_u32();
          if (r.get_u32() !=
              static_cast<std::uint32_t>(service.artifact().where(v % items))) {
            ++failures[static_cast<std::size_t>(c)];
          }
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
  }

  const int fd = connect_to(socket_path);
  ASSERT_GE(fd, 0);
  write_frames(fd, {encode_shutdown()});
  EXPECT_EQ(status_of(read_reply(fd)), Status::kOk);
  ::close(fd);
  server.join();
  EXPECT_EQ(service.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequests) + 1);
}

TEST(ServeSocket, SnapshotRestoreAnswersIdentically) {
  const PartitionService service = make_service(12);
  const std::string socket_path = ::testing::TempDir() + "/oms_service_snap.sock";
  const std::string snap_path = ::testing::TempDir() + "/oms_service_snap.part";
  std::thread server([&] { serve_unix_socket(service, socket_path); });

  const int fd = connect_to(socket_path);
  ASSERT_GE(fd, 0);
  write_frames(fd, {encode_snapshot(snap_path), encode_shutdown()});
  EXPECT_EQ(status_of(read_reply(fd)), Status::kOk);
  EXPECT_EQ(status_of(read_reply(fd)), Status::kOk);
  ::close(fd);
  server.join();

  // A second service restored from the snapshot must answer every query
  // identically — the oms_serve --artifact restart path.
  const PartitionService restored(read_artifact(snap_path));
  std::remove(snap_path.c_str());
  const std::uint64_t items = service.artifact().assignment.size();
  for (std::uint64_t v = 0; v < items; ++v) {
    const Reply a = service.handle(encode_where(v).data(), encode_where(v).size());
    const Reply b = restored.handle(encode_where(v).data(), encode_where(v).size());
    ASSERT_EQ(a.body, b.body) << "item " << v;
    const Reply ra = service.handle(encode_rank(v).data(), encode_rank(v).size());
    const Reply rb = restored.handle(encode_rank(v).data(), encode_rank(v).size());
    ASSERT_EQ(ra.body, rb.body) << "item " << v;
  }
}

} // namespace
} // namespace oms::service
