/// \file test_partitioner_facade.cpp
/// \brief The facade parity wall: oms::Partitioner::partition() must be
///        bit-identical to calling each legacy driver family directly —
///        pinned with the same golden fingerprints the core/buffered suites
///        use, across the in-memory, from-disk and pipelined routes — plus
///        the artifact snapshot round trip and normalize()'s error contract.
#include "oms/oms.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "oms/buffered/buffered_partitioner.hpp"
#include "oms/edgepart/driver.hpp"
#include "oms/edgepart/hdrf.hpp"
#include "oms/graph/generators.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/stream/checkpoint.hpp"
#include "oms/stream/one_pass_driver.hpp"
#include "oms/stream/window_partitioner.hpp"
#include "oms/util/random.hpp"
#include "tests/test_support.hpp"

namespace oms {
namespace {

using testing::fnv1a;

class TempFile {
public:
  TempFile(const std::string& contents, const std::string& tag,
           const std::string& ext) {
    path_ = ::testing::TempDir() + "/oms_facade_" + tag + ext;
    std::ofstream out(path_);
    out << contents;
  }
  TempFile(const CsrGraph& graph, const std::string& tag) {
    path_ = ::testing::TempDir() + "/oms_facade_" + tag + ".graph";
    write_metis(graph, path_);
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
};

/// Same weighted instance as the core golden suite (test_golden_equivalence):
/// non-unit node and edge weights keep the capacity math honest.
[[nodiscard]] CsrGraph weighted_graph() {
  Rng rng(777);
  const NodeId n = 1200;
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.set_node_weight(u, 1 + static_cast<NodeWeight>(rng.next_below(5)));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 0; d < 4; ++d) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (v != u) {
        builder.add_edge(u, v, 1 + static_cast<EdgeWeight>(rng.next_below(9)));
      }
    }
  }
  return std::move(builder).build();
}

[[nodiscard]] PartitionRequest request_for(const std::string& algo, BlockId k) {
  PartitionRequest req;
  req.algo = algo;
  req.k = k;
  return req;
}

/// Run one request through every node-stream route the facade dispatches —
/// in-memory overload, path-based in-memory, --from-disk sequential,
/// --pipeline — and require one identical assignment from all four.
[[nodiscard]] std::uint64_t all_routes_hash(const CsrGraph& graph,
                                            PartitionRequest req,
                                            const std::string& tag) {
  const Partitioner partitioner;
  const PartitionArtifact in_memory = partitioner.partition(graph, req);
  EXPECT_EQ(in_memory.assignment.size(), graph.num_nodes()) << tag;

  const TempFile file(graph, tag);
  req.graph_path = file.path();
  EXPECT_EQ(partitioner.partition(req).assignment, in_memory.assignment)
      << tag << ": loaded-from-path route diverged";

  req.from_disk = true;
  EXPECT_EQ(partitioner.partition(req).assignment, in_memory.assignment)
      << tag << ": from-disk route diverged";

  req.pipeline = true;
  EXPECT_EQ(partitioner.partition(req).assignment, in_memory.assignment)
      << tag << ": pipelined route diverged";

  return fnv1a(in_memory.assignment);
}

// ---------------------------------------------------------------------------
// Golden parity: the facade must reproduce the exact fingerprints the legacy
// drivers are pinned to in core/test_golden_equivalence and
// buffered/test_buffered_stream. A mismatch means the facade changed a
// decision somewhere on the way to the driver.
// ---------------------------------------------------------------------------

TEST(FacadeGolden, OmsDefaults) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  EXPECT_EQ(all_routes_hash(ba, request_for("oms", 24), "oms24"),
            0xdf5910a0b8af5c66ULL);
}

TEST(FacadeGolden, FlatFennel) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  EXPECT_EQ(all_routes_hash(ba, request_for("fennel", 96), "fennel96"),
            0x2d45a97b4c53b8eeULL);
}

TEST(FacadeGolden, FlatLdg) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  EXPECT_EQ(all_routes_hash(ba, request_for("ldg", 33), "ldg33"),
            0xee67e2db8124ef7dULL);
}

TEST(FacadeGolden, FlatHashing) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  PartitionRequest req = request_for("hashing", 77);
  req.seed = 5;
  EXPECT_EQ(all_routes_hash(ba, req, "hashing77"), 0x33d0cc2987716cf5ULL);
}

TEST(FacadeGolden, BufferedLpDefaults) {
  const CsrGraph ba = gen::barabasi_albert(5000, 5, 11);
  PartitionRequest req = request_for("buffered", 24);
  EXPECT_EQ(all_routes_hash(ba, req, "buffered24"), 0xcc49cbb6a1fc4da2ULL);
  EXPECT_EQ(Partitioner().partition(ba, req).algo, "buffered:lp");
}

TEST(FacadeGolden, OmsMappingOnWeightedGraph) {
  PartitionRequest req;
  req.algo = "oms";
  req.hierarchy = "4:16:2";
  const CsrGraph g = weighted_graph();
  const PartitionArtifact artifact = Partitioner().partition(g, req);
  EXPECT_EQ(fnv1a(artifact.assignment), 0x18f8feb794389b1cULL);
  EXPECT_EQ(artifact.k, 128); // 4 * 16 * 2 PEs, derived from the hierarchy
  ASSERT_TRUE(artifact.hierarchy.has_value());
  EXPECT_GE(artifact.metrics.mapping_j, 0.0);
  // rank_of answers through the *regular* tree of the topology.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(artifact.rank_of(v),
              artifact.tree().leaf_block_id(artifact.where(v)));
  }
}

// ---------------------------------------------------------------------------
// Driver-equality parity for the families without public golden pins.
// ---------------------------------------------------------------------------

TEST(FacadeParity, WindowMatchesDriver) {
  const CsrGraph grid = gen::grid_2d(40, 40);
  PartitionRequest req = request_for("window", 8);
  req.window_size = 64;

  WindowConfig wc;
  wc.window_size = 64;
  wc.epsilon = req.epsilon;
  wc.seed = req.seed;
  WindowPartitioner window(grid.num_nodes(), grid.total_node_weight(), wc, 8);
  const std::vector<BlockId> direct = run_one_pass(grid, window, 1).assignment;

  EXPECT_EQ(Partitioner().partition(grid, req).assignment, direct);
}

TEST(FacadeParity, BufferedMultilevelMatchesDriver) {
  const CsrGraph ba = gen::barabasi_albert(2000, 4, 3);
  PartitionRequest req = request_for("buffered", 16);
  req.buffered_engine = "multilevel";
  req.buffer_size = 512;

  BufferedConfig bc;
  bc.buffer_size = 512;
  bc.engine = BufferedEngine::kMultilevel;
  const std::vector<BlockId> direct =
      buffered_partition(ba, 16, bc).assignment;

  const PartitionArtifact artifact = Partitioner().partition(ba, req);
  EXPECT_EQ(artifact.assignment, direct);
  EXPECT_EQ(artifact.algo, "buffered:multilevel");
}

TEST(FacadeParity, EdgePartitionMatchesDriver) {
  // A deterministic edge list; .edgelist makes format autodetection pick the
  // vertex-cut route with the hdrf default.
  Rng rng(4242);
  std::string lines = "# facade parity edge list\n";
  for (int i = 0; i < 4000; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(900));
    const auto v = static_cast<NodeId>(rng.next_below(900));
    lines += std::to_string(u) + " " + std::to_string(v) + "\n";
  }
  const TempFile file(lines, "edges", ".edgelist");

  PartitionRequest req;
  req.graph_path = file.path();
  req.k = 12;

  EdgePartConfig config;
  config.k = 12;
  config.lambda = req.lambda;
  config.epsilon = req.epsilon;
  config.seed = req.seed;
  HdrfPartitioner direct(config);
  const EdgePartitionResult reference = run_edge_partition_from_file(
      file.path(), direct, StreamErrorPolicy{}, nullptr);

  const PartitionArtifact artifact = Partitioner().partition(req);
  EXPECT_TRUE(artifact.edge_partition);
  EXPECT_EQ(artifact.algo, "hdrf");
  EXPECT_EQ(artifact.assignment, reference.edge_assignment);
  EXPECT_EQ(artifact.num_edges, reference.stats.num_edges);
  EXPECT_EQ(artifact.num_nodes, reference.stats.num_vertices);
  EXPECT_DOUBLE_EQ(artifact.metrics.replication_factor,
                   replication_factor(direct.replicas()));
  // where() on an edge-partition artifact answers per *edge index*.
  EXPECT_EQ(artifact.where(0), reference.edge_assignment[0]);
  EXPECT_EQ(artifact.where(artifact.assignment.size()), kInvalidBlock);
}

// ---------------------------------------------------------------------------
// The artifact snapshot round trip (the format oms_serve SNAPSHOT/--artifact
// rides): every serialized field must survive, lookups must answer the same,
// and corrupt bytes must surface as IoError.
// ---------------------------------------------------------------------------

TEST(FacadeArtifact, SnapshotRoundTripPreservesAnswers) {
  const CsrGraph ba = gen::barabasi_albert(1500, 4, 9);
  PartitionRequest req;
  req.algo = "oms";
  req.hierarchy = "4:4:2";
  const PartitionArtifact artifact = Partitioner().partition(ba, req);

  const std::string path = ::testing::TempDir() + "/oms_facade_artifact.part";
  write_artifact(artifact, path);
  const PartitionArtifact restored = read_artifact(path);
  std::remove(path.c_str());

  EXPECT_EQ(restored.algo, artifact.algo);
  EXPECT_EQ(restored.k, artifact.k);
  EXPECT_EQ(restored.seed, artifact.seed);
  EXPECT_EQ(restored.num_nodes, artifact.num_nodes);
  EXPECT_EQ(restored.num_edges, artifact.num_edges);
  EXPECT_EQ(restored.assignment, artifact.assignment);
  EXPECT_DOUBLE_EQ(restored.metrics.edge_cut, artifact.metrics.edge_cut);
  EXPECT_DOUBLE_EQ(restored.metrics.mapping_j, artifact.metrics.mapping_j);
  ASSERT_TRUE(restored.hierarchy.has_value());
  EXPECT_EQ(restored.hierarchy->extents(), artifact.hierarchy->extents());
  for (std::uint64_t v = 0; v < restored.num_nodes; ++v) {
    ASSERT_EQ(restored.where(v), artifact.where(v)) << "node " << v;
    ASSERT_EQ(restored.rank_of(v), artifact.rank_of(v)) << "node " << v;
  }
}

TEST(FacadeArtifact, CorruptionIsIoError) {
  PartitionArtifact artifact;
  artifact.algo = "oms";
  artifact.k = 3;
  artifact.assignment = {0, 1, 2, 0};
  artifact.rebuild_tree();
  const std::string path = ::testing::TempDir() + "/oms_facade_corrupt.part";
  write_artifact(artifact, path);

  // Flip one payload byte: the CRC must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('\x7f');
  }
  EXPECT_THROW((void)read_artifact(path), IoError);

  // Truncate: strict length discipline.
  write_artifact(artifact, path);
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> all((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size() - 3));
  }
  EXPECT_THROW((void)read_artifact(path), IoError);

  EXPECT_THROW((void)read_artifact(path + ".does-not-exist"), IoError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// normalize(): the error contract the CLIs map to exit 2.
// ---------------------------------------------------------------------------

TEST(FacadeNormalize, RejectsContradictoryRequests) {
  const auto reject = [](PartitionRequest req) {
    req.graph_path = req.graph_path.empty() ? "/dev/null" : req.graph_path;
    EXPECT_THROW((void)Partitioner::normalize(req), InvalidRequest);
  };
  reject({}); // no k, no hierarchy

  PartitionRequest req;
  req.k = 4;
  req.algo = "does-not-exist";
  reject(req);

  req = {};
  req.k = 4;
  req.algo = "hdrf"; // edge algorithm on the default metis format
  reject(req);

  req = {};
  req.k = 4;
  req.epsilon = -0.5;
  reject(req);

  req = {};
  req.k = 4;
  req.algo = "window";
  req.pipeline = true;
  req.io_threads = 4; // window commits in stream order
  reject(req);

  req = {};
  req.k = 4;
  req.buffered_engine = "turbo";
  reject(req);

  req = {};
  req.k = 4;
  req.checkpoint = "ckpt.bin";
  req.pipeline = true; // the checkpointing driver is sequential
  reject(req);

  req = {};
  req.k = 4;
  req.graph_path = "/no/such/file.graph";
  EXPECT_THROW((void)Partitioner::normalize(req), InvalidRequest);
}

TEST(FacadeNormalize, ResolvesDefaultsAndFormat) {
  PartitionRequest req;
  req.graph_path = "/dev/null";
  req.k = 4;
  const PartitionRequest metis = Partitioner::normalize(req);
  EXPECT_EQ(metis.format, "metis");
  EXPECT_EQ(metis.algo, "oms");

  req.graph_path = "/dev/null"; // extension sniffing is on the path only
  req.format = "edgelist";
  const PartitionRequest edges = Partitioner::normalize(req);
  EXPECT_EQ(edges.algo, "hdrf");

  req = {};
  req.graph_path = "/dev/null";
  req.hierarchy = "2:3:4";
  EXPECT_EQ(Partitioner::normalize(req).k, 24);
}

TEST(FacadeNormalize, ResumeMismatchIsInvalidRequest) {
  const CsrGraph g = testing::path_graph(64);
  const TempFile file(g, "resume");
  // A checkpoint stamped with different parameters than the run.
  CheckpointMeta meta;
  meta.algo = "fennel";
  meta.k = 8;
  meta.seed = 99;
  meta.num_nodes = 64;
  const std::string ckpt = ::testing::TempDir() + "/oms_facade_resume.ckpt";
  write_checkpoint_file(ckpt, meta, {});

  PartitionRequest req;
  req.graph_path = file.path();
  req.algo = "fennel";
  req.k = 8;
  req.seed = 1; // checkpoint says 99
  req.resume = ckpt;
  EXPECT_THROW((void)Partitioner().partition(req), InvalidRequest);
  std::remove(ckpt.c_str());
}

} // namespace
} // namespace oms
