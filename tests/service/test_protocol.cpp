/// \file test_protocol.cpp
/// \brief The malformed-frame matrix against PartitionService::handle() —
///        the pure request->reply core of oms_serve. Every defective body
///        must come back as a *typed error reply* (kBadFrame / kBadOp /
///        kOutOfRange / kIo), never as an exception or a crash, and a
///        malformed kShutdown must shut nothing down.
#include "oms/oms.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "oms/stream/checkpoint.hpp"

namespace oms::service {
namespace {

/// A small hand-built artifact with known answers: 6 items over k=4 under a
/// 2:2 hierarchy, so where() and rank_of() differ observably.
[[nodiscard]] PartitionService make_service() {
  PartitionArtifact artifact;
  artifact.algo = "test";
  artifact.k = 4;
  artifact.num_nodes = 6;
  artifact.num_edges = 7;
  artifact.seed = 3;
  artifact.elapsed_s = 0.25;
  artifact.assignment = {0, 3, 1, 2, 3, 0};
  artifact.hierarchy = SystemHierarchy::parse("2:2", "1:10");
  artifact.rebuild_tree();
  return PartitionService(std::move(artifact));
}

[[nodiscard]] Reply call(const PartitionService& service,
                         const std::vector<char>& body) {
  return service.handle(body.data(), body.size());
}

[[nodiscard]] Status status_of(const Reply& reply) {
  CheckpointReader r(reply.body);
  return static_cast<Status>(r.get_u32());
}

/// OK reply carrying exactly one u32.
[[nodiscard]] std::uint32_t u32_payload(const Reply& reply) {
  CheckpointReader r(reply.body);
  EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(Status::kOk));
  const std::uint32_t v = r.get_u32();
  r.expect_end();
  return v;
}

TEST(Protocol, WhereAnswersEveryItem) {
  const PartitionService service = make_service();
  const std::vector<BlockId> expected = {0, 3, 1, 2, 3, 0};
  for (std::uint64_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(u32_payload(call(service, encode_where(v))),
              static_cast<std::uint32_t>(expected[v]))
        << "item " << v;
  }
}

TEST(Protocol, RankDescendsTheTree) {
  const PartitionService service = make_service();
  const PartitionArtifact& artifact = service.artifact();
  for (std::uint64_t v = 0; v < artifact.assignment.size(); ++v) {
    EXPECT_EQ(u32_payload(call(service, encode_rank(v))),
              static_cast<std::uint32_t>(artifact.rank_of(v)))
        << "item " << v;
  }
}

TEST(Protocol, WhereOutOfRangeIsTypedError) {
  const PartitionService service = make_service();
  EXPECT_EQ(status_of(call(service, encode_where(6))), Status::kOutOfRange);
  EXPECT_EQ(status_of(call(service, encode_where(~0ULL))), Status::kOutOfRange);
  EXPECT_EQ(status_of(call(service, encode_rank(6))), Status::kOutOfRange);
}

TEST(Protocol, BatchMixesValidAndInvalidPerItem) {
  const PartitionService service = make_service();
  const std::uint64_t ids[] = {1, 99, 5, ~0ULL};
  const Reply reply = call(service, encode_batch(ids));
  CheckpointReader r(reply.body);
  EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(Status::kOk));
  ASSERT_EQ(r.get_u32(), 4u);
  EXPECT_EQ(r.get_u32(), 3u);            // where(1)
  EXPECT_EQ(r.get_u32(), kInvalidEntry); // 99 out of range
  EXPECT_EQ(r.get_u32(), 0u);            // where(5)
  EXPECT_EQ(r.get_u32(), kInvalidEntry);
  r.expect_end();
}

TEST(Protocol, EmptyBatchIsOk) {
  const PartitionService service = make_service();
  const Reply reply = call(service, encode_batch({}));
  CheckpointReader r(reply.body);
  EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(Status::kOk));
  EXPECT_EQ(r.get_u32(), 0u);
  r.expect_end();
}

TEST(Protocol, StatsReportsTheArtifact) {
  const PartitionService service = make_service();
  (void)call(service, encode_where(0)); // bump the request counter first
  const Reply reply = call(service, encode_stats());
  CheckpointReader r(reply.body);
  EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(Status::kOk));
  EXPECT_EQ(r.get_u32(), 0u); // not an edge partition
  EXPECT_EQ(r.get_u32(), 4u); // k
  EXPECT_EQ(r.get_u64(), 6u); // items
  EXPECT_EQ(r.get_u64(), 6u); // num_nodes
  EXPECT_EQ(r.get_u64(), 7u); // num_edges
  EXPECT_EQ(r.get_u64(), 2u); // requests served, this one included
  EXPECT_DOUBLE_EQ(r.get_f64(), 0.25);
  EXPECT_EQ(r.get_string(), "test");
  r.expect_end();
}

TEST(Protocol, SnapshotRoundTripsThroughTheService) {
  const PartitionService service = make_service();
  const std::string path = ::testing::TempDir() + "/oms_protocol_snap.part";
  EXPECT_EQ(status_of(call(service, encode_snapshot(path))), Status::kOk);
  const PartitionArtifact restored = read_artifact(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.assignment, service.artifact().assignment);
  EXPECT_EQ(restored.algo, "test");
}

TEST(Protocol, SnapshotToUnwritablePathIsIoError) {
  const PartitionService service = make_service();
  const Reply reply =
      call(service, encode_snapshot("/no/such/dir/oms_snap.part"));
  EXPECT_EQ(status_of(reply), Status::kIo);
  EXPECT_FALSE(reply.shutdown);
}

TEST(Protocol, ShutdownAcksAndSignals) {
  const PartitionService service = make_service();
  const Reply reply = call(service, encode_shutdown());
  EXPECT_EQ(status_of(reply), Status::kOk);
  EXPECT_TRUE(reply.shutdown);
}

// ---------------------------------------------------------------------------
// The malformed-frame matrix. handle() must stay total.
// ---------------------------------------------------------------------------

TEST(Protocol, MalformedBodiesAreBadFrame) {
  const PartitionService service = make_service();
  const auto expect_bad_frame = [&](std::vector<char> body,
                                    const std::string& label) {
    const Reply reply = call(service, body);
    EXPECT_EQ(status_of(reply), Status::kBadFrame) << label;
    EXPECT_FALSE(reply.shutdown) << label;
  };
  expect_bad_frame({}, "empty body");
  expect_bad_frame({'\x01'}, "opcode cut short");
  expect_bad_frame({'\x01', 0, 0, 0}, "kWhere with no operand");
  expect_bad_frame({'\x01', 0, 0, 0, 5, 0, 0}, "kWhere operand cut short");
  {
    std::vector<char> trailing = encode_where(1);
    trailing.push_back('\x00');
    expect_bad_frame(trailing, "kWhere with trailing bytes");
  }
  {
    // A batch header claiming more ids than the body carries: the count must
    // be rejected against remaining() before any allocation or read.
    CheckpointWriter w;
    w.put_u32(static_cast<std::uint32_t>(Op::kBatch));
    w.put_u32(1000000);
    w.put_u64(1);
    expect_bad_frame(w.bytes(), "batch count larger than the body");
  }
  {
    std::vector<char> shutdown_trailing = encode_shutdown();
    shutdown_trailing.push_back('\x7f');
    const Reply reply = call(service, shutdown_trailing);
    EXPECT_EQ(status_of(reply), Status::kBadFrame);
    EXPECT_FALSE(reply.shutdown) << "a malformed shutdown must not stop the server";
  }
  {
    // Snapshot with a string length pointing past the body.
    CheckpointWriter w;
    w.put_u32(static_cast<std::uint32_t>(Op::kSnapshot));
    w.put_u32(1000);
    w.put_raw("short", 5);
    expect_bad_frame(w.bytes(), "snapshot path length lies");
  }
}

TEST(Protocol, UnknownOpcodeIsBadOp) {
  const PartitionService service = make_service();
  CheckpointWriter w;
  w.put_u32(0);
  EXPECT_EQ(status_of(call(service, w.bytes())), Status::kBadOp);
  CheckpointWriter w2;
  w2.put_u32(0xdeadbeef);
  EXPECT_EQ(status_of(call(service, w2.bytes())), Status::kBadOp);
}

TEST(Protocol, ErrorRepliesCarryAMessage) {
  const PartitionService service = make_service();
  const Reply reply = call(service, encode_where(123456));
  CheckpointReader r(reply.body);
  EXPECT_EQ(static_cast<Status>(r.get_u32()), Status::kOutOfRange);
  const std::string message = r.get_string();
  EXPECT_NE(message.find("123456"), std::string::npos);
  r.expect_end();
}

TEST(Protocol, FramingHelperWrapsBodies) {
  const std::vector<char> body = encode_where(7);
  const std::vector<char> framed = frame(body);
  ASSERT_EQ(framed.size(), body.size() + 4);
  CheckpointReader r(framed.data(), framed.size());
  EXPECT_EQ(r.get_u32(), body.size());
  EXPECT_EQ(std::vector<char>(framed.begin() + 4, framed.end()), body);
}

} // namespace
} // namespace oms::service
