/// Telemetry registry unit tests: histogram bucket math, per-thread shard
/// merge under real contention, arm/disarm hook semantics, span nesting,
/// gauge high-watermarks, and the "oms.metrics.v1" JSON round-trip.
#include "oms/telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "oms/util/io_error.hpp"

namespace oms::telemetry {
namespace {

/// Every test arms its own scoped registry; the fixture guarantees disarm
/// even on failure so suites cannot leak an armed pointer into each other.
class MetricsTest : public ::testing::Test {
protected:
  void TearDown() override { MetricsRegistry::disarm(); }
  MetricsRegistry registry;
};

TEST_F(MetricsTest, BucketBoundariesAreLog2) {
  EXPECT_EQ(histogram_bucket(0), 0);
  EXPECT_EQ(histogram_bucket(1), 0);
  EXPECT_EQ(histogram_bucket(2), 1);
  EXPECT_EQ(histogram_bucket(3), 1);
  EXPECT_EQ(histogram_bucket(4), 2);
  EXPECT_EQ(histogram_bucket(7), 2);
  EXPECT_EQ(histogram_bucket(8), 3);
  EXPECT_EQ(histogram_bucket((1ULL << 39) - 1), 38);
  EXPECT_EQ(histogram_bucket(1ULL << 39), 39);
  // The last bucket is open-ended: anything huge lands there, never OOB.
  EXPECT_EQ(histogram_bucket(~0ULL), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_floor(0), 0u);
  EXPECT_EQ(histogram_bucket_floor(1), 2u);
  EXPECT_EQ(histogram_bucket_floor(10), 1024u);
}

TEST_F(MetricsTest, DisarmedHooksAreNoOps) {
  ASSERT_EQ(MetricsRegistry::armed(), nullptr);
  EXPECT_FALSE(enabled());
  metric_add(Counter::kStreamNodes, 7);
  gauge_set(Gauge::kProgressTotalItems, 9);
  hist_record(Hist::kStageParse, 100);
  { const TraceSpan span(Hist::kStageAssign); }
  MetricsRegistry::arm(registry);
  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.counter(Counter::kStreamNodes), 0u);
  EXPECT_EQ(snap.gauge(Gauge::kProgressTotalItems), 0u);
  EXPECT_EQ(snap.histogram(Hist::kStageParse).count, 0u);
  EXPECT_EQ(snap.histogram(Hist::kStageAssign).count, 0u);
}

TEST_F(MetricsTest, ArmedHooksLandInTheRegistry) {
  MetricsRegistry::arm(registry);
  EXPECT_TRUE(enabled());
  metric_add(Counter::kStreamNodes, 5);
  metric_add(Counter::kStreamNodes);
  gauge_set(Gauge::kProgressTotalItems, 42);
  hist_record(Hist::kStageParse, 1000);
  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.counter(Counter::kStreamNodes), 6u);
  EXPECT_EQ(snap.gauge(Gauge::kProgressTotalItems), 42u);
  EXPECT_EQ(snap.histogram(Hist::kStageParse).count, 1u);
  EXPECT_EQ(snap.histogram(Hist::kStageParse).sum, 1000u);
  EXPECT_EQ(snap.histogram(Hist::kStageParse).buckets[histogram_bucket(1000)],
            1u);
}

TEST_F(MetricsTest, DestructorDisarmsItself) {
  {
    MetricsRegistry scoped;
    MetricsRegistry::arm(scoped);
    ASSERT_EQ(MetricsRegistry::armed(), &scoped);
  }
  // The scoped registry died armed; the global pointer must not dangle.
  EXPECT_EQ(MetricsRegistry::armed(), nullptr);
}

TEST_F(MetricsTest, GaugeMaxKeepsTheHighWatermark) {
  MetricsRegistry::arm(registry);
  gauge_max(Gauge::kPipelineQueueDepthMax, 3);
  gauge_max(Gauge::kPipelineQueueDepthMax, 9);
  gauge_max(Gauge::kPipelineQueueDepthMax, 5);
  EXPECT_EQ(registry.scrape().gauge(Gauge::kPipelineQueueDepthMax), 9u);
}

TEST_F(MetricsTest, TraceSpansRecordAndNest) {
  MetricsRegistry::arm(registry);
  {
    const TraceSpan outer(Hist::kStageBufferBuild);
    {
      const TraceSpan inner(Hist::kStageBufferRefine);
    }
    { const TraceSpan sibling(Hist::kStageBufferRefine); }
  }
  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.histogram(Hist::kStageBufferBuild).count, 1u);
  EXPECT_EQ(snap.histogram(Hist::kStageBufferRefine).count, 2u);
  // Outer span wall time covers both inner spans.
  EXPECT_GE(snap.histogram(Hist::kStageBufferBuild).sum,
            snap.histogram(Hist::kStageBufferRefine).sum);
}

TEST_F(MetricsTest, SpanStartedWhileDisarmedRecordsNothing) {
  std::optional<TraceSpan> span;
  span.emplace(Hist::kStageParse);
  // Arming mid-span must not produce a bogus sample from a zero start time.
  MetricsRegistry::arm(registry);
  span.reset();
  EXPECT_EQ(registry.scrape().histogram(Hist::kStageParse).count, 0u);
}

TEST_F(MetricsTest, ShardedCountersMergeExactlyUnderContention) {
  MetricsRegistry::arm(registry);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        metric_add(Counter::kStreamNodes);
        hist_record(Hist::kServiceRequest, static_cast<std::uint64_t>(i));
        if (i % 4096 == 0) {
          // Concurrent scrape while writers run: must be data-race free
          // (TSan leg) and internally sane even if mid-update.
          MetricsRegistry* reg = MetricsRegistry::armed();
          ASSERT_NE(reg, nullptr);
          (void)reg->scrape();
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const MetricsSnapshot snap = registry.scrape();
  constexpr std::uint64_t kTotal =
      std::uint64_t{kThreads} * std::uint64_t{kAddsPerThread};
  EXPECT_EQ(snap.counter(Counter::kStreamNodes), kTotal);
  EXPECT_EQ(snap.histogram(Hist::kServiceRequest).count, kTotal);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.histogram(Hist::kServiceRequest).buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, kTotal);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry::arm(registry);
  metric_add(Counter::kStreamEdges, 3);
  gauge_set(Gauge::kProgressTotalItems, 5);
  hist_record(Hist::kStageAssign, 7);
  registry.reset();
  EXPECT_EQ(registry.scrape(), MetricsSnapshot{});
}

TEST_F(MetricsTest, PublishWorkMapsOntoWorkCounters) {
  MetricsRegistry::arm(registry);
  WorkCounters work;
  work.score_evaluations = 11;
  work.neighbor_visits = 22;
  work.layers_traversed = 33;
  publish_work(work);
  publish_work(work);
  const MetricsSnapshot snap = registry.scrape();
  EXPECT_EQ(snap.counter(Counter::kWorkScoreEvaluations), 22u);
  EXPECT_EQ(snap.counter(Counter::kWorkNeighborVisits), 44u);
  EXPECT_EQ(snap.counter(Counter::kWorkLayersTraversed), 66u);
}

TEST_F(MetricsTest, JsonRoundTripIsExact) {
  MetricsRegistry::arm(registry);
  for (int c = 0; c < kNumCounters; ++c) {
    registry.add(static_cast<Counter>(c), static_cast<std::uint64_t>(c) * 31 + 1);
  }
  for (int g = 0; g < kNumGauges; ++g) {
    registry.gauge_set(static_cast<Gauge>(g), static_cast<std::uint64_t>(g) + 5);
  }
  for (int h = 0; h < kNumHists; ++h) {
    registry.record(static_cast<Hist>(h), std::uint64_t{1} << (h + 2));
    registry.record(static_cast<Hist>(h), 0);
  }
  const MetricsSnapshot snap = registry.scrape();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\":\"oms.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"stream.nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"service.request_ns\""), std::string::npos);
  const MetricsSnapshot parsed = MetricsSnapshot::from_json(json);
  EXPECT_EQ(parsed, snap);
  // Serialization is canonical: same snapshot, same bytes.
  EXPECT_EQ(parsed.to_json(), json);
}

TEST_F(MetricsTest, JsonParserRejectsMalformedDocuments) {
  const std::string good = MetricsSnapshot{}.to_json();
  EXPECT_THROW((void)MetricsSnapshot::from_json(""), IoError);
  EXPECT_THROW((void)MetricsSnapshot::from_json("{}"), IoError);
  EXPECT_THROW((void)MetricsSnapshot::from_json(good + "x"), IoError);
  EXPECT_THROW(
      (void)MetricsSnapshot::from_json(good.substr(0, good.size() / 2)),
      IoError);
  std::string wrong_schema = good;
  wrong_schema.replace(wrong_schema.find("v1"), 2, "v9");
  EXPECT_THROW((void)MetricsSnapshot::from_json(wrong_schema), IoError);
  std::string unknown_name = good;
  unknown_name.replace(unknown_name.find("stream.nodes"), 12, "stream.bogus");
  EXPECT_THROW((void)MetricsSnapshot::from_json(unknown_name), IoError);
  // Whitespace, though never emitted, is tolerated on re-ingest.
  std::string spaced = good;
  for (std::size_t at = spaced.find("\":"); at != std::string::npos;
       at = spaced.find("\":", at + 3)) {
    spaced.replace(at, 2, "\": ");
  }
  EXPECT_EQ(MetricsSnapshot::from_json(spaced), MetricsSnapshot{});
}

TEST_F(MetricsTest, MetricNamesAreUniqueAndStable) {
  std::vector<std::string> names;
  for (int c = 0; c < kNumCounters; ++c) {
    names.emplace_back(counter_name(static_cast<Counter>(c)));
  }
  for (int g = 0; g < kNumGauges; ++g) {
    names.emplace_back(gauge_name(static_cast<Gauge>(g)));
  }
  for (int h = 0; h < kNumHists; ++h) {
    names.emplace_back(hist_name(static_cast<Hist>(h)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]) << "duplicate metric name";
    }
  }
  EXPECT_STREQ(counter_name(Counter::kStreamNodes), "stream.nodes");
  EXPECT_STREQ(gauge_name(Gauge::kProgressTotalItems), "progress.total_items");
  EXPECT_STREQ(hist_name(Hist::kServiceRequest), "service.request_ns");
}

} // namespace
} // namespace oms::telemetry
