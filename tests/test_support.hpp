/// \file test_support.hpp
/// \brief Shared fixtures for the test suite: small hand-checkable graphs and
///        convenience runners.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "oms/graph/csr_graph.hpp"
#include "oms/graph/graph_builder.hpp"
#include "oms/types.hpp"
#include "oms/util/random.hpp"

namespace oms::testing {

/// Base seed shared by every randomized suite (fuzz, property tests). Fixed by
/// default so failures reproduce exactly; export OMS_TEST_SEED=<n> to explore
/// other draws. A failing run's seed is always printable from this one value.
/// Parsed as unsigned so the full uint64_t seed space is reachable; an
/// unparsable value warns instead of silently running the default seed.
[[nodiscard]] inline std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    const char* value = std::getenv("OMS_TEST_SEED");
    if (value == nullptr || *value == '\0') {
      return std::uint64_t{1};
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    // strtoull silently wraps "-1" to UINT64_MAX; only bare digits qualify.
    if (value[0] < '0' || value[0] > '9' || end == nullptr || *end != '\0' ||
        errno == ERANGE) {
      std::fprintf(stderr,
                   "[oms-test] warning: OMS_TEST_SEED='%s' is not a decimal "
                   "uint64; using default seed 1\n",
                   value);
      return std::uint64_t{1};
    }
    return static_cast<std::uint64_t>(parsed);
  }();
  return seed;
}

/// Decorrelated per-draw seed: mixes the base seed with the draw index so
/// parameterized cases stay independent under any OMS_TEST_SEED.
[[nodiscard]] inline std::uint64_t draw_seed(std::uint64_t draw) {
  return hash_combine(test_seed(), draw);
}

/// FNV-1a over the little-endian bytes of each block id — the fingerprint
/// the golden-equivalence suites pin (core, window, buffered).
[[nodiscard]] inline std::uint64_t fnv1a(const std::vector<BlockId>& assignment) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const BlockId b : assignment) {
    auto v = static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

/// Path 0-1-2-...-(n-1).
inline CsrGraph path_graph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    builder.add_edge(u, u + 1);
  }
  return std::move(builder).build();
}

/// Cycle over n nodes.
inline CsrGraph cycle_graph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    builder.add_edge(u, (u + 1) % n);
  }
  return std::move(builder).build();
}

/// Complete graph K_n.
inline CsrGraph complete_graph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

/// Two cliques of size \p half connected by a single bridge edge — the
/// canonical "obvious best bisection" instance (cut = 1).
inline CsrGraph two_cliques_bridge(NodeId half) {
  GraphBuilder builder(2 * half);
  for (NodeId u = 0; u < half; ++u) {
    for (NodeId v = u + 1; v < half; ++v) {
      builder.add_edge(u, v);
      builder.add_edge(half + u, half + v);
    }
  }
  builder.add_edge(half - 1, half);
  return std::move(builder).build();
}

/// 4-clique chain: c cliques of size s, consecutive cliques joined by one
/// edge; good for hierarchical partitioning tests (natural blocks).
inline CsrGraph clique_chain(NodeId cliques, NodeId size) {
  GraphBuilder builder(cliques * size);
  for (NodeId c = 0; c < cliques; ++c) {
    const NodeId base = c * size;
    for (NodeId u = 0; u < size; ++u) {
      for (NodeId v = u + 1; v < size; ++v) {
        builder.add_edge(base + u, base + v);
      }
    }
    if (c + 1 < cliques) {
      builder.add_edge(base + size - 1, base + size);
    }
  }
  return std::move(builder).build();
}

/// Star with center 0 and n-1 leaves.
inline CsrGraph star_graph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId u = 1; u < n; ++u) {
    builder.add_edge(0, u);
  }
  return std::move(builder).build();
}

} // namespace oms::testing
